//! `microbench`: a small wall-clock benchmarking harness with a
//! criterion-shaped API.
//!
//! The hot-path benchmarks in `benches/hotpaths.rs` were written against the
//! `criterion` crate; this module supplies the subset they use so the
//! workspace has zero external dependencies and still produces useful
//! timings. Methodology is deliberately simple: one warm-up iteration, then
//! `sample_size` timed samples, reporting min/median/mean per sample.
//!
//! Wall-clock reads (`Instant::now`) are allowed *here* — measurement is the
//! whole point — but nowhere under `crates/{sim,core,hier,toolkit}`; detlint
//! rule R2 enforces that split.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement; only the variant the
/// benchmarks use is provided.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation, setup excluded from timing.
    PerIteration,
}

/// Top-level harness handle, one per benchmark binary.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness; an argv filter substring (as with criterion) limits
    /// which benchmark names run.
    pub fn new() -> Criterion {
        let filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
            time_budget: None,
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// Fewest samples a time-budgeted benchmark will record: below this the
/// reported minimum is pure noise, so the budget never cuts under it.
const MIN_BUDGETED_SAMPLES: usize = 3;

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    time_budget: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Caps the wall-clock spent per benchmark: sampling stops early once
    /// `budget` has elapsed (setup included), but never before
    /// `MIN_BUDGETED_SAMPLES` samples are in. Expensive whole-simulation
    /// fixtures use this to record 3–5 meaningful samples instead of
    /// grinding through a fixed count sized for nanosecond routines.
    pub fn time_budget(&mut self, budget: Duration) -> &mut Self {
        self.time_budget = Some(budget);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            time_budget: self.time_budget,
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    /// Ends the group (kept for API parity; output is already flushed).
    pub fn finish(&mut self) {}
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    time_budget: Option<Duration>,
}

impl Bencher {
    /// Whether another sample should be recorded: always up to the minimum,
    /// then until the sample count or the group's time budget is exhausted.
    fn wants_more(&self, started: Instant) -> bool {
        if self.samples.len() >= self.sample_size {
            return false;
        }
        match self.time_budget {
            Some(b) if self.samples.len() >= MIN_BUDGETED_SAMPLES => started.elapsed() < b,
            _ => true,
        }
    }

    /// Times `routine` repeatedly; its return value is passed through
    /// `black_box` semantics by being dropped after the timer stops.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up
        let started = Instant::now();
        while self.wants_more(started) {
            let t0 = Instant::now();
            let out = routine();
            let dt = t0.elapsed();
            std::hint::black_box(out);
            self.samples.push(dt);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        std::hint::black_box(routine(setup())); // warm-up
        let started = Instant::now();
        while self.wants_more(started) {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed();
            std::hint::black_box(out);
            self.samples.push(dt);
        }
    }
}

/// One benchmark's timing summary, as kept in the record registry for
/// machine-readable export (`BENCH_results.json`).
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full `group/name` benchmark id.
    pub name: String,
    /// Fastest sample, nanoseconds.
    pub min_ns: u128,
    /// Median sample, nanoseconds.
    pub median_ns: u128,
    /// Mean of all samples, nanoseconds.
    pub mean_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

static RECORDS: std::sync::Mutex<Vec<BenchRecord>> = std::sync::Mutex::new(Vec::new());

/// Drains every timing summary recorded by `bench_function` runs since the
/// last call.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut *RECORDS.lock().expect("record registry poisoned"))
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    RECORDS.lock().expect("record registry poisoned").push(BenchRecord {
        name: name.to_owned(),
        min_ns: min.as_nanos(),
        median_ns: median.as_nanos(),
        mean_ns: mean.as_nanos(),
        samples: sorted.len(),
    });
    println!(
        "{name:<40} min {:>10} | median {:>10} | mean {:>10} | n={}",
        fmt(min),
        fmt(median),
        fmt(mean),
        sorted.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares the benchmark registration function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::microbench::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut count = 0u32;
        g.bench_function("iter", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        g.finish();
        // warm-up + 5 samples
        assert_eq!(count, 6);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(4);
        let mut setups = 0u32;
        let mut runs = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |_| {
                    runs += 1;
                },
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, 5);
        assert_eq!(runs, 5);
    }

    #[test]
    fn time_budget_stops_sampling_early_but_keeps_the_minimum() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(50).time_budget(Duration::from_millis(8));
        let mut count = 0u32;
        g.bench_function("budgeted", |b| {
            b.iter(|| {
                count += 1;
                std::thread::sleep(Duration::from_millis(4));
            })
        });
        g.finish();
        // The record registry is shared across tests, so assert on the
        // routine count alone: warm-up plus at least the floor, well short
        // of the configured 50.
        let runs = count as usize - 1; // minus warm-up
        assert!(
            (MIN_BUDGETED_SAMPLES..50).contains(&runs),
            "budget should cut 50 samples down to a handful, got {runs}"
        );
    }

    #[test]
    fn records_are_registered_for_export() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("reg");
        g.sample_size(3);
        g.bench_function("probe", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
        let recs = take_records();
        assert!(recs.iter().any(|r| r.name == "reg/probe" && r.samples == 3));
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(fmt(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt(Duration::from_secs(500)).ends_with('s'));
    }
}
