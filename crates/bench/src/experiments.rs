//! The experiment suite: one function per quantitative claim of the paper
//! (E1–E10) plus two design-choice ablations (A1–A2). See DESIGN.md for
//! the claim-to-experiment index and EXPERIMENTS.md for recorded results.

use now_sim::{Partition, Pid, Sim, SimConfig, SimDuration, SimTime};
use now_sim::det_rand::{DetRng, Rng};

use isis_core::testutil::generic_cluster;
use isis_core::{GroupId, GroupView, IsisConfig, IsisProcess};
use isis_hier::{HierView, LargeGroupConfig, LeafDesc};
use isis_toolkit::flat::FlatService;

use crate::harness::{
    disturbed, event_cost, flat_service, flat_service_with, hier_service, hier_service_with,
    sweep_rows, FLAT_GID, LGID,
};
use crate::report::{f, Table};

fn sizes(quick: bool, full: &[usize], small: &[usize]) -> Vec<usize> {
    if quick { small.to_vec() } else { full.to_vec() }
}

// ---------------------------------------------------------------------
// E1 — request cost: "a service request will involve 2n messages … and
// will require action by all n members"
// ---------------------------------------------------------------------

pub fn e1(quick: bool) -> Table {
    let mut t = Table::new(
        "E1",
        "coordinator-cohort request cost: flat 2n vs hierarchical 2·leaf",
        &[
            "n", "flat_msgs", "flat_acting", "hier_msgs", "hier_acting", "leaf_size",
        ],
    );
    sweep_rows(&mut t, sizes(quick, &[2, 4, 8, 16, 32, 64, 128, 256], &[2, 8, 32]), |n| {
        // Flat.
        let mut fsvc = flat_service(n, 100 + n as u64);
        fsvc.sim.stats_mut().reset_window();
        fsvc.one_request("PUT k v");
        let flat_msgs = fsvc.sim.stats().messages_sent;
        let flat_acting = disturbed(&fsvc.sim, &fsvc.members);

        // Hierarchical: the marginal cost of the request over the
        // steady-state maintenance traffic (baseline-subtracted).
        let cfg = LargeGroupConfig::new(3, 4).counting();
        let mut hsvc = hier_service_with(n.max(3), cfg, IsisConfig::quiet(), 200 + n as u64);
        let dir = hsvc.directory();
        let (leaf, _) = *isis_toolkit::hier::home_leaf(&dir, "k");
        let targets = hsvc.leaf_members(leaf);
        let leaf_size = targets.len();
        let client = hsvc.client;
        let members = hsvc.members.clone();
        let (hier_msgs, hier_acting) =
            event_cost(&mut hsvc.sim, &members, SimDuration::from_secs(2), |sim| {
                let tg = targets.clone();
                sim.invoke(client, move |p, ctx| {
                    p.with_app(ctx, |app, up| {
                        app.with_business(up, |biz, lup| {
                            biz.send_request_to(&tg, "PUT k v", lup);
                        });
                    });
                });
            });

        vec![vec![
            n.to_string(),
            flat_msgs.to_string(),
            flat_acting.to_string(),
            hier_msgs.to_string(),
            hier_acting.to_string(),
            leaf_size.to_string(),
        ]]
    });
    t.note("flat_msgs = 2n exactly (request ×n + reply + result ×(n-1))");
    t.note("hier cost is 2·leaf_size regardless of n");
    t
}

// ---------------------------------------------------------------------
// E2 — "message traffic will grow as the square of the number of clients"
// ---------------------------------------------------------------------

pub fn e2(quick: bool) -> Table {
    let mut t = Table::new(
        "E2",
        "traffic vs clients (service grows with demand): flat ~c², hier ~c",
        &[
            "clients", "flat_n", "flat_msgs", "hier_n", "hier_msgs", "flat/hier",
        ],
    );
    const REQS_PER_CLIENT: usize = 2;
    sweep_rows(&mut t, sizes(quick, &[8, 16, 32, 64], &[4, 8, 16]), |c| {
        let n = (c / 2).max(2);

        // Flat: service of n members; c clients each fire REQS requests.
        let mut fsvc = flat_service(n, 300 + c as u64);
        let mut clients = vec![fsvc.client];
        for _ in 1..c {
            let nd = fsvc.sim.add_nodes(1)[0];
            clients.push(
                fsvc.sim
                    .spawn(nd, IsisProcess::new(FlatService::new(FLAT_GID), IsisConfig::quiet())),
            );
        }
        fsvc.sim.run_for(SimDuration::from_secs(1));
        fsvc.sim.stats_mut().reset_window();
        for (i, &cl) in clients.iter().enumerate() {
            for r in 0..REQS_PER_CLIENT {
                let members = fsvc.members.clone();
                let body = format!("PUT k{i}_{r} v");
                fsvc.sim.invoke(cl, move |p, ctx| {
                    p.with_app(ctx, |app, up| app.send_request(&members, &body, up))
                });
            }
        }
        fsvc.sim.run_for(SimDuration::from_secs(5));
        let flat_msgs = fsvc.sim.stats().messages_sent;

        // Hierarchical: same member count, requests go to single leaves.
        let cfg = LargeGroupConfig::new(3, 4).counting();
        let mut hsvc = hier_service_with(n.max(3), cfg, IsisConfig::quiet(), 400 + c as u64);
        let mut hclients = vec![hsvc.client];
        for _ in 1..c {
            let nd = hsvc.sim.add_nodes(1)[0];
            hclients.push(hsvc.sim.spawn(
                nd,
                IsisProcess::new(
                    isis_hier::HierApp::new(isis_toolkit::hier::LeafServiceApp::new(LGID)),
                    IsisConfig::quiet(),
                ),
            ));
        }
        hsvc.sim.run_for(SimDuration::from_secs(1));
        let dir = hsvc.directory();
        // Pre-resolve full leaf memberships once (name-service role).
        let leaf_targets: Vec<Vec<Pid>> = dir
            .iter()
            .map(|(gid, _)| hsvc.leaf_members(*gid))
            .collect();
        let hcl = hclients.clone();
        let lt = leaf_targets.clone();
        let dlen = dir.len();
        let all_members = hsvc.members.clone();
        let (hier_msgs, _) =
            event_cost(&mut hsvc.sim, &all_members, SimDuration::from_secs(5), |sim| {
                for (i, &cl) in hcl.iter().enumerate() {
                    for r in 0..REQS_PER_CLIENT {
                        let body = format!("PUT k{i}_{r} v");
                        let key = format!("k{i}_{r}");
                        let shard = isis_toolkit::shard_of(&key, dlen);
                        let targets = lt[shard].clone();
                        sim.invoke(cl, move |p, ctx| {
                            p.with_app(ctx, |app, up| {
                                app.with_business(up, |biz, lup| {
                                    biz.send_request_to(&targets, &body, lup);
                                });
                            });
                        });
                    }
                }
            });

        vec![vec![
            c.to_string(),
            n.to_string(),
            flat_msgs.to_string(),
            n.max(3).to_string(),
            hier_msgs.to_string(),
            f(flat_msgs as f64 / hier_msgs.max(1) as f64),
        ]]
    });
    t.note("flat grows ~quadratically in clients (2n per request, n ∝ c)");
    t.note("hier grows linearly (2·leaf per request, leaf size constant)");
    t
}

// ---------------------------------------------------------------------
// E3 — membership-change cost: "upon group membership changes … a
// broadcast is sent to the new membership of the group"
// ---------------------------------------------------------------------

pub fn e3(quick: bool) -> Table {
    let mut t = Table::new(
        "E3",
        "cost of one member failure: flat O(n) messages vs hier leaf-bounded",
        &["n", "flat_msgs", "flat_disturbed", "hier_msgs", "hier_disturbed"],
    );
    sweep_rows(&mut t, sizes(quick, &[4, 8, 16, 32, 64, 128, 256, 512], &[4, 16, 64]), |n| {
        // Flat, quiet: the harness plays failure detector (reports the
        // suspicion at every survivor), so only membership traffic flows.
        let mut fsvc = flat_service(n, 500 + n as u64);
        let victim = fsvc.members[n / 2];
        fsvc.sim.crash(victim);
        fsvc.sim.stats_mut().reset_window();
        for &m in &fsvc.members {
            if m == victim {
                continue;
            }
            fsvc.sim.invoke(m, move |p, ctx| {
                let _ = p.report_suspect(FLAT_GID, victim, ctx);
            });
        }
        fsvc.sim.run_for(SimDuration::from_secs(20));
        let flat_msgs = fsvc.sim.stats().messages_sent;
        let flat_dist = disturbed(&fsvc.sim, &fsvc.members);

        // Hierarchical, quiet: only the victim's leaf detects and repairs.
        let cfg = LargeGroupConfig::new(3, 4).counting();
        let mut hsvc = hier_service_with(n.max(4), cfg, IsisConfig::quiet(), 600 + n as u64);
        let victim = *hsvc
            .members
            .iter()
            .find(|&&m| !hsvc.sim.process(m).app().is_rep(LGID))
            .expect("non-rep member");
        let leaf = hsvc.sim.process(victim).app().leaf_of(LGID).unwrap();
        let peers = hsvc.leaf_members(leaf);
        let all: Vec<Pid> = hsvc
            .members
            .iter()
            .chain(hsvc.leaders.iter())
            .copied()
            .filter(|&m| m != victim)
            .collect();
        let (hier_msgs, hier_dist) =
            event_cost(&mut hsvc.sim, &all, SimDuration::from_secs(20), |sim| {
                sim.crash(victim);
                for &m in &peers {
                    if m == victim {
                        continue;
                    }
                    sim.invoke(m, move |p, ctx| {
                        let _ = p.report_suspect(leaf, victim, ctx);
                    });
                }
            });

        vec![vec![
            n.to_string(),
            flat_msgs.to_string(),
            flat_dist.to_string(),
            hier_msgs.to_string(),
            hier_dist.to_string(),
        ]]
    });
    t.note("flat: every survivor participates in the flush (O(n) msgs, all disturbed)");
    t.note("hier: the leaf flush + one leader report (constant, leaf-bounded)");
    t
}

// ---------------------------------------------------------------------
// E4 — "no practical advantage to having more than perhaps five cohorts";
// "reliability will actually decrease"
// ---------------------------------------------------------------------

pub fn e4(quick: bool) -> Table {
    let mut t = Table::new(
        "E4",
        "cohort count: diminishing returns past ~5, then declining net reliability",
        &[
            "r",
            "cost_msgs",
            "P_ok(p=.05)",
            "P_ok_mc",
            "P_ok_load",
            "survives_r-1",
        ],
    );
    let p: f64 = 0.05;
    // Load-dependent per-member failure probability: bigger groups do more
    // work per request (2r messages), so p grows with r.
    let load = |r: usize| (p + 0.012 * r as f64).min(1.0);
    let rs: Vec<usize> = if quick {
        vec![1, 2, 3, 5, 8]
    } else {
        vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 16]
    };
    sweep_rows(&mut t, rs, |r| {
        let analytic = 1.0 - p.powi(r as i32);
        let trials = if quick { 20_000 } else { 200_000 };
        // Each point gets its own seed: the Monte-Carlo estimate must not
        // depend on how many points ran before it (or on which thread).
        let mut rng = DetRng::seed_from_u64(42 + r as u64);
        let mc = (0..trials)
            .filter(|_| (0..r).any(|_| rng.gen_f64() >= p))
            .count() as f64
            / trials as f64;
        let pl = load(r);
        let with_load = 1.0 - pl.powi(r as i32);

        // Sim validation: a service of r members answers a request even
        // after r-1 of them crash.
        let survives = {
            let mut fsvc = flat_service_with(r, IsisConfig::default(), 700 + r as u64);
            for &m in &fsvc.members[..r - 1] {
                fsvc.sim.crash(m);
            }
            let members = fsvc.members.clone();
            let req = fsvc
                .sim
                .invoke(fsvc.client, move |p, ctx| {
                    p.with_app(ctx, |app, up| app.send_request(&members, "PUT a 1", up))
                })
                .unwrap();
            fsvc.sim.run_for(SimDuration::from_secs(30));
            fsvc.sim.process(fsvc.client).app().replies.contains_key(&req)
        };

        vec![vec![
            r.to_string(),
            (2 * r).to_string(),
            f(analytic),
            f(mc),
            f(with_load),
            survives.to_string(),
        ]]
    });
    t.note("P_ok: request outlives the window if any of r members survives (p = per-member failure prob)");
    t.note("P_ok_load: with load-dependent failure p(r) = p + 0.012r, reliability peaks near r≈5 and then falls");
    t.note("survives_r-1: simulated — service of r answers after r-1 crashes (the resiliency contract)");
    t
}

// ---------------------------------------------------------------------
// E5 — reliability at scale: failures rise with n; flat groups pay an
// O(n) disturbance each time, hierarchical groups a leaf-bounded one
// ---------------------------------------------------------------------

pub fn e5(quick: bool) -> Table {
    let mut t = Table::new(
        "E5",
        "failure handling at scale: reconvergence and disturbance per failure",
        &[
            "n",
            "fail/hr(mtbf=72h)",
            "flat_reconv_ms",
            "flat_proc_ms",
            "hier_reconv_ms",
            "hier_proc_ms",
        ],
    );
    sweep_rows(&mut t, sizes(quick, &[8, 16, 32, 64, 128], &[8, 24]), |n| {
        // Flat with live failure detection.
        let (mut sim, members) = generic_cluster(
            n,
            FLAT_GID,
            IsisConfig::default(),
            SimConfig::lan(800 + n as u64),
            |_| FlatService::new(FLAT_GID),
        );
        sim.run_for(SimDuration::from_secs(2));
        let victim = members[n / 2];
        let t0 = sim.now();
        sim.crash(victim);
        let flat_reconv = await_excluded(&mut sim, &members, victim, FLAT_GID, t0);

        // Hierarchical with live detection (leaf heartbeats only).
        let cfg = LargeGroupConfig::new(3, 4);
        let mut hsvc = hier_service(n.max(4), cfg, 900 + n as u64);
        let victim = *hsvc
            .members
            .iter()
            .find(|&&m| !hsvc.sim.process(m).app().is_rep(LGID))
            .unwrap();
        let leaf = hsvc.sim.process(victim).app().leaf_of(LGID).unwrap();
        let peers = hsvc.leaf_members(leaf);
        let t0 = hsvc.sim.now();
        hsvc.sim.crash(victim);
        let hier_reconv = await_excluded(&mut hsvc.sim, &peers, victim, leaf, t0);

        let fails_per_hour = n as f64 / 72.0;
        let leaf_n = peers.len();
        vec![vec![
            n.to_string(),
            f(fails_per_hour),
            f(flat_reconv.as_millis_f64()),
            f(flat_reconv.as_millis_f64() * (n - 1) as f64),
            f(hier_reconv.as_millis_f64()),
            f(hier_reconv.as_millis_f64() * (leaf_n - 1) as f64),
        ]]
    });
    t.note("fail/hr: expected component failures per hour grows linearly with n (the paper's premise)");
    t.note("proc_ms: process·milliseconds of disturbance per failure = reconv × processes wedged");
    t.note("flat disturbance per failure grows with n; hierarchical stays leaf-bounded");
    t
}

fn await_excluded<A: isis_core::Application>(
    sim: &mut Sim<IsisProcess<A>>,
    affected: &[Pid],
    victim: Pid,
    gid: GroupId,
    t0: SimTime,
) -> SimDuration {
    let deadline = t0 + SimDuration::from_secs(120);
    loop {
        let done = affected.iter().filter(|&&m| m != victim).all(|&m| {
            // Reconverged when the survivor either installed a view
            // without the victim or left the group entirely (its leaf may
            // have been dissolved and the member migrated).
            !sim.is_alive(m)
                || sim
                    .process(m)
                    .view_of(gid)
                    .is_none_or(|v| !v.contains(victim))
        });
        if done {
            return sim.now().since(t0);
        }
        if sim.now() >= deadline || !sim.step() {
            return sim.now().since(t0);
        }
    }
}

// ---------------------------------------------------------------------
// E6 — failure scope: "any single process failure results in a broadcast
// to a bounded number of other processes"
// ---------------------------------------------------------------------

pub fn e6(quick: bool) -> Table {
    let mut t = Table::new(
        "E6",
        "processes notified per failure: flat n-1 vs hier bounded; total leaf failure informs only the parent",
        &["n", "flat_notified", "hier_notified", "leaf_size", "leafdeath_notified"],
    );
    sweep_rows(&mut t, sizes(quick, &[8, 16, 32, 64, 128, 256], &[8, 24, 64]), |n| {
        // Flat (quiet + harness-reported suspicion, as in E3).
        let mut fsvc = flat_service(n, 1_000 + n as u64);
        let victim = fsvc.members[1];
        fsvc.sim.crash(victim);
        fsvc.sim.stats_mut().reset_window();
        for &m in &fsvc.members {
            if m != victim {
                fsvc.sim.invoke(m, move |p, ctx| {
                    let _ = p.report_suspect(FLAT_GID, victim, ctx);
                });
            }
        }
        fsvc.sim.run_for(SimDuration::from_secs(20));
        let flat_notified = disturbed(&fsvc.sim, &fsvc.members);

        // Hier, counting config: one member crash, suspicion reported by
        // its leaf peers (the only processes that would detect it).
        let cfg = LargeGroupConfig::new(3, 4).counting();
        let mut hsvc = hier_service_with(n.max(8), cfg, IsisConfig::quiet(), 1_100 + n as u64);
        let victim = *hsvc
            .members
            .iter()
            .find(|&&m| !hsvc.sim.process(m).app().is_rep(LGID))
            .unwrap();
        let leaf = hsvc.sim.process(victim).app().leaf_of(LGID).unwrap();
        let peers = hsvc.leaf_members(leaf);
        let leaf_size = peers.len();
        hsvc.sim.crash(victim);
        hsvc.sim.stats_mut().reset_window();
        for &m in &peers {
            if m != victim {
                hsvc.sim.invoke(m, move |p, ctx| {
                    let _ = p.report_suspect(leaf, victim, ctx);
                });
            }
        }
        hsvc.sim.run_for(SimDuration::from_secs(20));
        let everyone: Vec<Pid> = hsvc
            .members
            .iter()
            .chain(hsvc.leaders.iter())
            .copied()
            .collect();
        let hier_notified = disturbed(&hsvc.sim, &everyone);

        // Hier: total leaf failure — the parent rep detects the silence
        // and only it (plus the leader group) is informed. Beacons must be
        // live for detection, so this runs with default maintenance and
        // uses baseline-compared accounting.
        let mut h2 = hier_service(n.max(8), LargeGroupConfig::new(3, 4), 1_200 + n as u64);
        h2.sim.run_for(SimDuration::from_secs(3));
        let dir = h2.directory();
        let doomed = dir.last().expect("leaves").0;
        let doomed_members = h2.leaf_members(doomed);
        let everyone2: Vec<Pid> = h2
            .members
            .iter()
            .chain(h2.leaders.iter())
            .copied()
            .filter(|m| !doomed_members.contains(m))
            .collect();
        let (_msgs, leafdeath_notified) =
            event_cost(&mut h2.sim, &everyone2, SimDuration::from_secs(15), |sim| {
                for &m in &doomed_members {
                    sim.crash(m);
                }
            });

        vec![vec![
            n.to_string(),
            flat_notified.to_string(),
            hier_notified.to_string(),
            leaf_size.to_string(),
            leafdeath_notified.to_string(),
        ]]
    });
    t.note("hier: only the victim's leaf peers and the leader group see membership traffic");
    t.note("leafdeath: the parent rep detects the silence and informs the leader; the new structure then flows down the tree, touching one rep per leaf (fanout-bounded per process) and no plain members");
    t
}

// ---------------------------------------------------------------------
// E7 — "bounding the storage required within any single process for
// storing a group view"
// ---------------------------------------------------------------------

pub fn e7(quick: bool) -> Table {
    let mut t = Table::new(
        "E7",
        "per-process view storage: flat O(n) vs hier member O(leaf), rep O(fanout), leader O(leaves)",
        &[
            "n",
            "flat_member_B",
            "hier_member_B",
            "hier_rep_B",
            "leader_B",
        ],
    );
    let cfg = LargeGroupConfig::new(3, 8);
    let ns = sizes(quick, &[8, 64, 256, 1_024, 4_096, 16_384], &[8, 256, 4_096]);
    sweep_rows(&mut t, ns, |n| {
        // Representation sizes from the actual data structures.
        let flat_view = GroupView {
            gid: FLAT_GID,
            view_id: 1,
            members: (0..n as u32).map(Pid).collect(),
        };
        let leaf_size = cfg.max_leaf.min(n);
        let nleaves = n.div_ceil(leaf_size);
        let leaf_view = GroupView {
            gid: LGID.leaf_gid(1),
            view_id: 1,
            members: (0..leaf_size as u32).map(Pid).collect(),
        };
        let hview = HierView {
            lgid: LGID,
            epoch: 1,
            fanout: cfg.fanout,
            resiliency: cfg.resiliency,
            leaves: (0..nleaves)
                .map(|i| LeafDesc {
                    gid: LGID.leaf_gid(i as u32 + 1),
                    contacts: (0..cfg.resiliency.min(leaf_size) as u32).map(Pid).collect(),
                    size: leaf_size,
                })
                .collect(),
            leader_contacts: (0..cfg.resiliency as u32).map(Pid).collect(),
        };
        let rep_slice = hview.slice_for(nleaves.saturating_sub(1) / 2);
        vec![vec![
            n.to_string(),
            flat_view.storage_bytes().to_string(),
            leaf_view.storage_bytes().to_string(),
            (leaf_view.storage_bytes() + rep_slice.storage_bytes()).to_string(),
            hview.storage_bytes().to_string(),
        ]]
    });
    t.note("flat member stores the full membership: O(n)");
    t.note("hier member stores only its leaf view; a rep adds an O(fanout) routing slice");
    t.note("only the leader group stores the leaf list — 'a complete list of the processes is not explicitly stored anywhere'");
    t
}

/// E7 validation against a live cluster (used by the test suite).
pub fn e7_measured(n: usize, seed: u64) -> (usize, usize) {
    // Returns (max flat member bytes, max hier plain-member bytes).
    let (sim, members) = generic_cluster(
        n,
        FLAT_GID,
        IsisConfig::default(),
        SimConfig::ideal(seed),
        |_| FlatService::new(FLAT_GID),
    );
    let flat = members
        .iter()
        .map(|&m| sim.process(m).membership_storage_bytes(FLAT_GID))
        .max()
        .unwrap_or(0);
    let hsvc = hier_service(n, LargeGroupConfig::new(3, 4), seed + 1);
    let hier = hsvc
        .members
        .iter()
        .filter(|&&m| !hsvc.sim.process(m).app().is_rep(LGID))
        .map(|&m| {
            hsvc.sim.process(m).total_membership_storage_bytes()
                + hsvc.sim.process(m).app().hier_storage_bytes()
        })
        .max()
        .unwrap_or(0);
    (flat, hier)
}

// ---------------------------------------------------------------------
// E8 — multistage broadcast: "a process may communicate directly with no
// more than fanout group members"; depth grows logarithmically
// ---------------------------------------------------------------------

pub fn e8(quick: bool) -> Table {
    let mut t = Table::new(
        "E8",
        "tree broadcast: per-process destinations bounded by fanout; depth ~ log_f(leaves)",
        &[
            "n", "fanout", "leaves", "depth", "max_dests", "bound", "total_msgs", "latency_ms",
        ],
    );
    let ns: Vec<usize> = sizes(quick, &[32, 128, 512], &[32, 96]);
    let fs: Vec<usize> = if quick { vec![2, 4] } else { vec![2, 4, 8, 16] };
    let mut points: Vec<(usize, usize)> = Vec::new();
    for &n in &ns {
        for &fan in &fs {
            points.push((n, fan));
        }
    }
    if !quick {
        // The paper's target scale: live multistage broadcasts over two
        // thousand members (wide fanouts only — fanout 2 at this size means
        // a thousand leaves and tells us nothing new about the bound), then
        // pushed past it to eight thousand to show the destination bound
        // and the log-depth latency growth both hold an order of magnitude
        // beyond the paper's examples.
        points.push((2_048, 8));
        points.push((2_048, 16));
        points.push((8_192, 8));
        points.push((8_192, 16));
    }
    sweep_rows(&mut t, points, |(n, fan)| {
        {
            let cfg = LargeGroupConfig::new(3, fan).counting();
            let mut h = hier_service_with(
                n,
                cfg.clone(),
                IsisConfig::quiet(),
                1_300 + (n * 31 + fan) as u64,
            );
            let view = h
                .sim
                .process(h.leaders[0])
                .app()
                .leader_view(LGID)
                .unwrap()
                .clone();
            h.sim.stats_mut().enable_fanout_tracking();
            h.sim.stats_mut().reset_window();
            let origin = h.members[n / 3];
            let t0 = h.sim.now();
            h.sim.invoke(origin, move |p, ctx| {
                p.with_app(ctx, |app, up| {
                    app.with_business(up, |_biz, lup| {
                        let me = lup.me();
                        lup.lbcast(
                            LGID,
                            isis_toolkit::hier::HSvcMsg::Reply {
                                req: isis_toolkit::ReqId { client: me, seq: 0 },
                                reply: "bcast".into(),
                            },
                        );
                    });
                });
            });
            // Run until every member delivered it.
            let deadline = h.sim.now() + SimDuration::from_secs(60);
            loop {
                let done = h.members.iter().all(|&m| {
                    h.sim.process(m).app().biz().state.get("bcast").is_some()
                        || h.sim.process(m).app().biz().pending_len() > 0
                });
                let _ = done;
                // LeafDeliver goes to on_lbcast, not the KV; count counter.
                let delivered = h.sim.stats().counter("hier.lbcast.delivered");
                if delivered >= n as u64 || h.sim.now() >= deadline {
                    break;
                }
                if !h.sim.step() {
                    break;
                }
            }
            let latency = h.sim.now().since(t0);
            h.sim.run_for(SimDuration::from_secs(5));
            let max_dests = h.sim.stats().max_distinct_destinations();
            let bound = fan + cfg.max_leaf + 2;
            vec![vec![
                n.to_string(),
                fan.to_string(),
                view.num_leaves().to_string(),
                view.depth().to_string(),
                max_dests.to_string(),
                bound.to_string(),
                h.sim.stats().messages_sent.to_string(),
                f(latency.as_millis_f64()),
            ]]
        }
    });
    t.note("bound = fanout + leaf_size + 2 (children + own leaf + parent ack + origin ack)");
    t.note("total_msgs ≈ n + #leaves·2: one delivery per member plus tree overhead");
    t.note("latency is on the ideal (microsecond) network: read its *growth* with depth, not its absolute value");
    t
}

// ---------------------------------------------------------------------
// E9 — trading room at 100–500 workstations, sub-second response
// ---------------------------------------------------------------------

pub fn e9(quick: bool) -> Table {
    let mut t = Table::new(
        "E9",
        "trading room: quote latency and fanout, flat vs hierarchical floor",
        &[
            "analysts",
            "mode",
            "p50_ms",
            "p99_ms",
            "max_fanout",
            "msgs",
            "delivery",
        ],
    );
    let quotes = if quick { 20 } else { 60 };
    // The paper pitches the trading room at 100–500 workstations; the full
    // sweep pushes past that to a thousand analysts on one floor.
    let ns = sizes(quick, &[100, 300, 500, 1_000], &[24, 60]);
    sweep_rows(&mut t, ns, |n| {
        let h = isis_apps::drivers::run_trading_hier_with(
            n,
            quotes,
            200,
            LargeGroupConfig::new(3, 8).counting(),
            IsisConfig::quiet(),
            2_000 + n as u64,
        );
        let fl = isis_apps::run_trading_flat(n, quotes, 200, 2_100 + n as u64);
        vec![
            vec![
                n.to_string(),
                "hier".into(),
                f(h.p50_ms),
                f(h.p99_ms),
                h.max_fanout.to_string(),
                h.messages.to_string(),
                f(h.delivery_ratio),
            ],
            vec![
                n.to_string(),
                "flat".into(),
                f(fl.p50_ms),
                f(fl.p99_ms),
                fl.max_fanout.to_string(),
                fl.messages.to_string(),
                f(fl.delivery_ratio),
            ],
        ]
    });
    t.note("hier: feed fanout stays bounded; flat: the feed contacts all n-1 analysts per quote");
    t.note("both sides run maintenance-quiet so msgs counts only quote dissemination; E5 covers liveness costs");
    t
}

// ---------------------------------------------------------------------
// E10 — manufacturing control: consistency + availability under failures
// ---------------------------------------------------------------------

pub fn e10(quick: bool) -> Table {
    let mut t = Table::new(
        "E10",
        "factory: transactional inventory under cell crashes (conservation must hold)",
        &[
            "cells",
            "crashes",
            "attempts",
            "committed",
            "availability",
            "conserved",
        ],
    );
    let mut points: Vec<(usize, usize)> = Vec::new();
    for &n in &sizes(quick, &[30, 60], &[12]) {
        for k in [0usize, 3] {
            points.push((n, k));
        }
    }
    sweep_rows(&mut t, points, |(n, k)| {
        let r = isis_apps::run_factory(n, 8, if quick { 3 } else { 4 }, k, 3_000 + n as u64);
        vec![vec![
            n.to_string(),
            k.to_string(),
            r.attempts.to_string(),
            r.committed.to_string(),
            f(r.availability),
            r.conserved.to_string(),
        ]]
    });
    t.note("conserved: initial_parts - remaining == 2 × products, audited after the run");
    t
}

// ---------------------------------------------------------------------
// A1 — ablation: leader-group branch views vs full replication
// ---------------------------------------------------------------------

pub fn a1(quick: bool) -> Table {
    let mut t = Table::new(
        "A1",
        "ablation: branch views at the leader group vs replicated at every member",
        &[
            "n",
            "leader_update_msgs",
            "full_repl_msgs",
            "leader_storage_B",
            "full_repl_storage_B",
        ],
    );
    sweep_rows(&mut t, sizes(quick, &[16, 64, 256, 1_024], &[16, 64]), |n| {
        // Measured: messages that flow when one leaf's contacts change
        // (a rep change) under the leader design.
        let cfg = LargeGroupConfig::new(3, 4);
        let measured = if n <= 256 {
            let mut h = hier_service(n, cfg.clone(), 4_000 + n as u64);
            h.sim.run_for(SimDuration::from_secs(2));
            let dir = h.directory();
            let leaf = dir.last().unwrap().0;
            let rep = h.leaf_members(leaf)[0];
            h.sim.stats_mut().reset_window();
            h.sim.crash(rep);
            h.sim.run_for(SimDuration::from_secs(10));
            // Membership traffic only: subtract the idle baseline measured
            // over an equal window.
            let with_change = h.sim.stats().messages_sent;
            h.sim.stats_mut().reset_window();
            h.sim.run_for(SimDuration::from_secs(10));
            let baseline = h.sim.stats().messages_sent;
            with_change.saturating_sub(baseline)
        } else {
            0
        };
        let nleaves = n.div_ceil(cfg.max_leaf);
        let hview_bytes = 24 + nleaves * (8 + 4 * cfg.resiliency + 8);
        vec![vec![
            n.to_string(),
            if measured > 0 {
                measured.to_string()
            } else {
                "-".into()
            },
            n.to_string(),
            (cfg.resiliency * hview_bytes).to_string(),
            (n * hview_bytes).to_string(),
        ]]
    });
    t.note("leader design: a membership change costs a leaf flush + leader-group update, independent of n");
    t.note("full replication would push every change to all n members and store the view n times");
    t
}

// ---------------------------------------------------------------------
// A2 — ablation: leaf split/merge thresholds under churn
// ---------------------------------------------------------------------

pub fn a2(quick: bool) -> Table {
    let mut t = Table::new(
        "A2",
        "ablation: leaf size band vs reorganisation churn",
        &["band", "splits", "dissolves", "epochs", "msgs", "leaves_end"],
    );
    let bands: Vec<(usize, usize)> = vec![(2, 4), (3, 7), (4, 12)];
    let n = if quick { 18 } else { 36 };
    sweep_rows(&mut t, bands, |(lo, hi)| {
        let cfg = LargeGroupConfig::new(2, 4).with_leaf_band(lo, hi);
        let mut h = hier_service_with(n, cfg, IsisConfig::default(), 5_000 + (lo * 10 + hi) as u64);
        h.sim.stats_mut().reset_window();
        // Churn: drain two leaves down to one member each (forcing merges
        // under narrow bands), then admit replacements (forcing mints and,
        // where dissolves overfill a target, splits).
        let dir = h.directory();
        for (gid, _) in dir.iter().rev().take(2) {
            let in_leaf = h.leaf_members(*gid);
            for &victim in in_leaf.iter().skip(1) {
                h.sim.crash(victim);
                h.sim.run_for(SimDuration::from_secs(3));
            }
        }
        for _ in 0..n / 4 {
            let nd = h.sim.add_nodes(1)[0];
            let p = h.sim.spawn(
                nd,
                IsisProcess::new(
                    isis_hier::HierApp::with_timers(
                        isis_toolkit::hier::LeafServiceApp::new(LGID),
                        LargeGroupConfig::new(2, 4),
                    ),
                    IsisConfig::default(),
                ),
            );
            let contact = h.leaders[0];
            h.sim.invoke(p, move |proc_, ctx| {
                proc_.with_app(ctx, move |app, up| app.join_large(LGID, contact, up));
            });
            h.sim.run_for(SimDuration::from_secs(2));
        }
        h.sim.run_for(SimDuration::from_secs(30));
        let st = h.sim.stats();
        let view = h
            .sim
            .process(h.leaders[0])
            .app()
            .leader_view(LGID)
            .unwrap();
        vec![vec![
            format!("[{lo},{hi}]"),
            st.counter("hier.splits").to_string(),
            st.counter("hier.dissolves").to_string(),
            st.counter("isis.views_installed").to_string(),
            st.messages_sent.to_string(),
            view.num_leaves().to_string(),
        ]]
    });
    t.note("narrow bands reorganise more under the same churn; wide bands tolerate drift");
    t
}

// ---------------------------------------------------------------------
// Extra: partition behaviour (section 5 of the paper)
// ---------------------------------------------------------------------

pub fn partitions(_quick: bool) -> Table {
    let mut t = Table::new(
        "EP",
        "network partition: primary partition continues, minority stalls (no split-brain)",
        &["n", "minority", "majority_view", "minority_stalled", "split_brain"],
    );
    sweep_rows(&mut t, vec![(5usize, 2usize), (9, 4), (15, 7)], |(n, k)| {
        let (mut sim, members) = generic_cluster(
            n,
            FLAT_GID,
            IsisConfig::partition_safe(),
            SimConfig::ideal(6_000 + n as u64),
            |_| FlatService::new(FLAT_GID),
        );
        let minority_nodes: Vec<now_sim::NodeId> =
            members[n - k..].iter().map(|&m| sim.node_of(m)).collect();
        sim.set_partition(Partition::split(minority_nodes));
        sim.run_for(SimDuration::from_secs(30));
        let majority_ok = members[..n - k]
            .iter()
            .all(|&m| sim.process(m).view_of(FLAT_GID).is_some_and(|v| v.size() == n - k));
        let minority_stalled = members[n - k..].iter().all(|&m| {
            let p = sim.process(m);
            p.status_of(FLAT_GID) == Some(isis_core::Status::Stalled)
                || p.view_of(FLAT_GID).is_some_and(|v| v.size() == n)
        });
        let split_brain = members[n - k..]
            .iter()
            .any(|&m| sim.process(m).view_of(FLAT_GID).is_some_and(|v| v.size() == k));
        vec![vec![
            n.to_string(),
            k.to_string(),
            majority_ok.to_string(),
            minority_stalled.to_string(),
            split_brain.to_string(),
        ]]
    });
    t.note("with partition_safety on, only a strict majority may install new views");
    t
}

// ---------------------------------------------------------------------
// EA — availability under churn: without recovery every crash shrinks
// the service for good; with crash-recovery the workstation respawns,
// rejoins through the ordinary join/state-transfer surface, and
// delivery coverage returns to ~1.0
// ---------------------------------------------------------------------

pub fn availability(quick: bool) -> Table {
    let mut t = Table::new(
        "EA",
        "availability under churn: lbcast coverage with vs without crash recovery",
        &["n", "crashes", "recovery", "coverage", "live_end", "rejoins"],
    );
    const N: usize = 12;
    let churn = if quick { vec![1usize, 3] } else { vec![1usize, 3, 5] };
    let cases: Vec<(usize, bool)> =
        churn.into_iter().flat_map(|c| [(c, false), (c, true)]).collect();
    sweep_rows(&mut t, cases, |(crashes, recover)| {
        let mut c = isis_hier::harness::large_cluster_with(
            N,
            LargeGroupConfig::new(2, 3),
            IsisConfig::default(),
            SimConfig::ideal(7_100 + crashes as u64 * 10 + u64::from(recover)),
        );
        let lgid = c.lgid;
        let mut fallen: Vec<Pid> = Vec::new();
        let mut coverage_sum = 0.0;
        for round in 0..crashes {
            // Each round fells a fresh, preferably plain (non-rep)
            // workstation, then measures how much of the original
            // membership a post-crash broadcast still reaches.
            let live = c.live_members();
            let victim = *live
                .iter()
                .find(|&&m| !fallen.contains(&m) && !c.sim.process(m).app().is_rep(lgid))
                .or_else(|| live.iter().find(|&&m| !fallen.contains(&m)))
                .expect("someone left to crash");
            fallen.push(victim);
            c.sim.crash(victim);
            c.run_for(SimDuration::from_secs(15));
            if recover {
                c.restart_member(victim);
            }
            c.run_for(SimDuration::from_secs(30)); // rejoin window (both arms wait)
            let origin = c
                .live_members()
                .into_iter()
                .find(|&m| m != victim)
                .expect("a surviving origin");
            let payload = format!("round-{round}");
            c.lbcast(origin, &payload);
            c.run_for(SimDuration::from_secs(15));
            let got = c
                .members
                .iter()
                .filter(|&&m| {
                    c.sim.is_alive(m)
                        && c.sim
                            .process(m)
                            .app()
                            .biz()
                            .lbcast_payloads(lgid)
                            .contains(&payload)
                })
                .count();
            coverage_sum += got as f64 / N as f64;
        }
        let live_end = c.live_members().len();
        let rejoins = c
            .members
            .iter()
            .filter(|&&m| c.sim.incarnation(m) > 0)
            .count();
        vec![vec![
            N.to_string(),
            crashes.to_string(),
            (if recover { "on" } else { "off" }).to_string(),
            f(coverage_sum / crashes as f64),
            live_end.to_string(),
            rejoins.to_string(),
        ]]
    });
    t.note("coverage = mean fraction of the original n members delivering each post-crash lbcast");
    t.note("recovery off: coverage decays ~1/n per crash; on: restarts rejoin and it stays ~1.0");
    t
}
