//! Shared experiment scaffolding: service clusters (flat and
//! hierarchical), directory snapshots, and measurement helpers.

use now_sim::{Pid, Sim, SimConfig, SimDuration};

use isis_core::testutil::generic_cluster;
use isis_core::{GroupId, IsisConfig, IsisProcess};
use isis_hier::harness::generic_large_cluster;
use isis_hier::{HierApp, LargeGroupConfig, LargeGroupId};
use isis_toolkit::flat::FlatService;
use isis_toolkit::hier::{Directory, LeafServiceApp};

/// The flat service group id used by experiments.
pub const FLAT_GID: GroupId = GroupId(9);
/// The hierarchical large group id used by experiments.
pub const LGID: LargeGroupId = LargeGroupId(1);

/// A flat coordinator-cohort deployment plus one external client.
pub struct FlatSvc {
    pub sim: Sim<IsisProcess<FlatService>>,
    pub members: Vec<Pid>,
    pub client: Pid,
}

/// Builds a flat service of `n` members (quiet config: every message on
/// the wire afterwards belongs to the experiment).
pub fn flat_service(n: usize, seed: u64) -> FlatSvc {
    flat_service_with(n, IsisConfig::quiet(), seed)
}

/// Builds a flat service with an explicit ISIS configuration.
pub fn flat_service_with(n: usize, icfg: IsisConfig, seed: u64) -> FlatSvc {
    let (mut sim, members) = generic_cluster(
        n,
        FLAT_GID,
        icfg.clone(),
        SimConfig::ideal(seed),
        |_| FlatService::new(FLAT_GID),
    );
    let nd = sim.add_nodes(1)[0];
    let client = sim.spawn(nd, IsisProcess::new(FlatService::new(FLAT_GID), icfg));
    sim.run_for(SimDuration::from_secs(1));
    FlatSvc {
        sim,
        members,
        client,
    }
}

impl FlatSvc {
    /// Issues one request from the client to all members and settles.
    pub fn one_request(&mut self, body: &str) {
        let members = self.members.clone();
        let b = body.to_owned();
        self.sim.invoke(self.client, move |p, ctx| {
            p.with_app(ctx, |app, up| app.send_request(&members, &b, up))
        });
        self.sim.run_for(SimDuration::from_secs(2));
    }
}

/// A hierarchical service deployment plus one external client.
pub struct HierSvc {
    pub sim: Sim<IsisProcess<HierApp<LeafServiceApp>>>,
    pub leaders: Vec<Pid>,
    pub members: Vec<Pid>,
    pub client: Pid,
    pub cfg: LargeGroupConfig,
}

/// Builds a hierarchical service of `n` members.
pub fn hier_service(n: usize, cfg: LargeGroupConfig, seed: u64) -> HierSvc {
    hier_service_with(n, cfg, IsisConfig::default(), seed)
}

/// Builds a hierarchical service with an explicit ISIS configuration.
pub fn hier_service_with(
    n: usize,
    cfg: LargeGroupConfig,
    icfg: IsisConfig,
    seed: u64,
) -> HierSvc {
    let (mut sim, leaders, members) = generic_large_cluster(
        n,
        cfg.clone(),
        icfg.clone(),
        SimConfig::ideal(seed),
        |_| LeafServiceApp::new(LGID),
    );
    let nd = sim.add_nodes(1)[0];
    let client = sim.spawn(
        nd,
        IsisProcess::new(HierApp::with_timers(LeafServiceApp::new(LGID), cfg.clone()), icfg),
    );
    sim.run_for(SimDuration::from_secs(1));
    HierSvc {
        sim,
        leaders,
        members,
        client,
        cfg,
    }
}

impl HierSvc {
    /// The current directory (leaf gid → contacts) from the leader.
    pub fn directory(&self) -> Directory {
        self.leaders
            .iter()
            .find(|&&l| self.sim.is_alive(l))
            .and_then(|&l| self.sim.process(l).app().leader_view(LGID))
            .expect("leader view")
            .leaves
            .iter()
            .map(|l| (l.gid, l.contacts.clone()))
            .collect()
    }

    /// Full leaf membership (not just bounded contacts) for one leaf, from
    /// simulator introspection.
    pub fn leaf_members(&self, leaf: GroupId) -> Vec<Pid> {
        self.members
            .iter()
            .copied()
            .filter(|&m| {
                self.sim.is_alive(m) && self.sim.process(m).app().leaf_of(LGID) == Some(leaf)
            })
            .collect()
    }

    /// Issues one request from the client, routed by its key, and settles.
    pub fn one_request(&mut self, body: &str) {
        // Route to the *full* leaf membership: the client broadcasts its
        // request to the subgroup, exactly as the paper describes.
        let dir = self.directory();
        let key = isis_toolkit::key_of(body).unwrap_or("");
        let (leaf, _) = *isis_toolkit::hier::home_leaf(&dir, key);
        let targets = self.leaf_members(leaf);
        let b = body.to_owned();
        self.sim.invoke(self.client, move |p, ctx| {
            p.with_app(ctx, |app, up| {
                app.with_business(up, |biz, lup| {
                    biz.send_request_to(&targets, &b, lup);
                });
            });
        });
        self.sim.run_for(SimDuration::from_secs(2));
    }
}

/// Runs one closure per sweep point on the parallel sweep runner
/// ([`crate::par_sweep`]) and appends the returned rows to `t` in input
/// order, so the emitted table is byte-identical whatever `NOW_JOBS` says.
/// Each closure builds, runs, and measures its own simulations — nothing
/// simulation-shaped ever crosses a thread.
pub fn sweep_rows<I: Send>(
    t: &mut crate::report::Table,
    points: Vec<I>,
    f: impl Fn(I) -> Vec<Vec<String>> + Sync,
) {
    for rows in crate::par_sweep(points, f) {
        for row in rows {
            t.row(row);
        }
    }
}

/// Number of processes that received at least one message in the current
/// stats window — the "disturbed set" of an event.
pub fn disturbed<S>(sim: &Sim<S>, pids: &[Pid]) -> usize
where
    S: now_sim::Process,
{
    pids.iter()
        .filter(|&&p| sim.stats().proc(p).received > 0)
        .count()
}

/// Measures the marginal cost of an event over the steady-state
/// background: first observes an idle window of `dur`, then fires the
/// event and observes an equal window. Returns `(extra_messages,
/// processes_with_extra_receives)`. The hierarchy has periodic maintenance
/// traffic (beacons, contact refreshes) even when idle; the paper's claims
/// are about the *event-driven* traffic, so both windows are compared
/// per-process.
pub fn event_cost<S: now_sim::Process>(
    sim: &mut Sim<S>,
    pids: &[Pid],
    dur: SimDuration,
    fire: impl FnOnce(&mut Sim<S>),
) -> (u64, usize) {
    sim.stats_mut().reset_window();
    sim.run_for(dur);
    let base_total = sim.stats().messages_sent;
    let base_recv: Vec<u64> = pids
        .iter()
        .map(|&p| sim.stats().proc(p).received)
        .collect();
    sim.stats_mut().reset_window();
    fire(sim);
    sim.run_for(dur);
    let total = sim.stats().messages_sent.saturating_sub(base_total);
    let acting = pids
        .iter()
        .enumerate()
        .filter(|(i, &p)| sim.stats().proc(p).received > base_recv[*i])
        .count();
    (total, acting)
}
