//! Experiment report formatting: aligned text tables, one per
//! paper-claim experiment, printed by the `e*_*` binaries and asserted on
//! by the test suite.

use std::fmt::Write as _;

/// One experiment's results.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. `"E1"`.
    pub id: &'static str,
    /// Title line (the paper claim being reproduced).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes appended after the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Looks a column index up by header name.
    pub fn col(&self, header: &str) -> usize {
        self.headers
            .iter()
            .position(|h| h == header)
            .unwrap_or_else(|| panic!("no column {header:?}"))
    }

    /// Typed accessor: cell as f64.
    pub fn f64(&self, row: usize, header: &str) -> f64 {
        self.rows[row][self.col(header)]
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric cell at {row}/{header}"))
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:>width$}  ", c, width = w[i]);
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let rule: usize = w.iter().sum::<usize>() + 2 * w.len();
        let _ = writeln!(out, "{}", "-".repeat(rule.min(100)));
        for r in &self.rows {
            line(&mut out, r);
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Renders the table as a JSON object — the machine-readable twin of
    /// [`Table::render`], collected into `BENCH_results.json`.
    pub fn to_json(&self) -> String {
        let arr = |items: &[String]| {
            let cells: Vec<String> = items.iter().map(|s| json_escape(s)).collect();
            format!("[{}]", cells.join(", "))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"id\": {}, \"title\": {}, \"headers\": {}, \"rows\": [{}], \"notes\": {}}}",
            json_escape(self.id),
            json_escape(&self.title),
            arr(&self.headers),
            rows.join(", "),
            arr(&self.notes)
        )
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float compactly.
pub fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Whether the harness runs in quick mode (smaller sweeps; used by the
/// test suite and by `QUICK=1` on the binaries).
pub fn quick_mode() -> bool {
    std::env::var("QUICK").is_ok_and(|v| v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("E0", "demo", &["n", "msgs"]);
        t.row(vec!["8".into(), "16".into()]);
        t.row(vec!["128".into(), "256".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("note: a note"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn typed_accessors() {
        let mut t = Table::new("E0", "demo", &["n", "x"]);
        t.row(vec!["8".into(), "3.5".into()]);
        assert_eq!(t.f64(0, "x"), 3.5);
        assert_eq!(t.col("n"), 0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(4.56789), "4.57");
        assert_eq!(f(0.01234), "0.0123");
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut t = Table::new("E0", "demo \"quoted\"", &["n", "msgs"]);
        t.row(vec!["8".into(), "16".into()]);
        t.note("line\nbreak");
        let j = t.to_json();
        assert!(j.contains("\"id\": \"E0\""));
        assert!(j.contains("demo \\\"quoted\\\""));
        assert!(j.contains("[\"8\", \"16\"]"));
        assert!(j.contains("line\\nbreak"));
    }
}
