//! Deterministic parallel sweep runner.
//!
//! Experiment sweeps are embarrassingly parallel: every `(config, seed)`
//! point is an *independent* seeded simulation whose output depends only on
//! its inputs. This module farms those points across OS worker threads
//! (`std::thread::scope` — no external deps, consistent with the offline
//! workspace) while keeping the emitted tables byte-identical whatever the
//! thread count:
//!
//! - each point's closure builds, runs, and measures its own `Sim` entirely
//!   inside one worker — sweep points never share simulator state (a `Sim`
//!   may itself shard across threads via `NOW_SIM_JOBS`, but that is the
//!   engine's own, byte-identical parallelism; see `now_sim::par`);
//! - results are written back **by input index**, so collection order equals
//!   input order regardless of which worker finishes first;
//! - no worker touches ambient RNG or shared mutable state beyond the
//!   index-addressed result slots.
//!
//! Thread count comes from `NOW_JOBS` (default: available parallelism);
//! `NOW_JOBS=1` recovers the plain serial loop in the calling thread.
//!
//! OS threads are deliberately confined to this crate: detlint rule R5
//! bans `thread::scope`/`thread::spawn` everywhere else, so the parallel
//! runner cannot leak real concurrency into the protocol crates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count for sweeps: `NOW_JOBS` if set (minimum 1), otherwise
/// the machine's available parallelism.
pub fn jobs() -> usize {
    match std::env::var("NOW_JOBS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

/// Runs `f` over every item on up to [`jobs`] worker threads, returning the
/// results in input order. With one job (or one item) this is a plain serial
/// map on the calling thread — no threads are spawned at all.
pub fn par_sweep<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    par_sweep_jobs(jobs(), items, f)
}

/// [`par_sweep`] with an explicit worker count (used by the determinism
/// tests to compare serial and parallel runs directly).
pub fn par_sweep_jobs<I, T, F>(workers: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Work and result slots are index-addressed; the atomic cursor hands
    // each index to exactly one worker, so every Mutex is uncontended and
    // the output order is the input order by construction.
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let (work, results) = (&work, &results);
    let cursor = &cursor;
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("sweep worker panicked holding a work slot")
                    .take()
                    .expect("each work index is claimed exactly once");
                let out = f(item);
                *results[i]
                    .lock()
                    .expect("sweep worker panicked holding a result slot") = Some(out);
            });
        }
    });
    results
        .iter()
        .map(|m| {
            m.lock()
                .expect("all workers joined")
                .take()
                .expect("every claimed index produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_sweep_jobs(8, items, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize| format!("row-{i}:{}", (0..i).sum::<usize>());
        let serial = par_sweep_jobs(1, (0..40).collect(), work);
        let par = par_sweep_jobs(8, (0..40).collect(), work);
        assert_eq!(serial, par);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(par_sweep_jobs(64, vec![1, 2, 3], |i| i + 1), vec![2, 3, 4]);
        assert_eq!(par_sweep_jobs(4, Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        assert_eq!(par_sweep_jobs(0, vec![7], |i| i), vec![7]);
    }

    #[test]
    fn non_send_state_stays_inside_one_worker() {
        // A !Send value (Rc) can be created and consumed inside the closure:
        // sweep points may keep thread-local state without it ever crossing
        // a worker boundary.
        let out = par_sweep_jobs(4, (0..16).collect::<Vec<usize>>(), |i| {
            let rc = std::rc::Rc::new(i);
            *rc * 2
        });
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<usize>>());
    }
}
