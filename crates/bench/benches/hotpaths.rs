//! Criterion micro/meso benchmarks of the stack's hot paths:
//! vector-clock operations, broadcast delivery through a small flat group,
//! a tree broadcast through a full hierarchy, and the two request paths
//! the paper compares (flat coordinator-cohort vs leaf-scoped request).

use isis_bench::microbench::{BatchSize, Criterion};
use isis_bench::{criterion_group, criterion_main, enginebench};

use isis_bench::harness::{flat_service, hier_service_with, FLAT_GID, LGID};
use isis_core::testutil::cluster;
use isis_core::{CastKind, IsisConfig, VClock};
use isis_hier::LargeGroupConfig;
use now_sim::{Pid, SimDuration};

fn bench_vclock(c: &mut Criterion) {
    let mut g = c.benchmark_group("vclock");
    g.bench_function("bump_merge_compare_16", |b| {
        let mut a = VClock::new();
        let mut other = VClock::new();
        for i in 0..16u32 {
            a.set(Pid(i), i as u64 + 1);
            other.set(Pid(i), (i as u64 * 7) % 13 + 1);
        }
        b.iter(|| {
            let mut x = a.clone();
            x.bump(Pid(3));
            x.merge(&other);
            std::hint::black_box(x.compare(&other));
        });
    });
    g.bench_function("deliverable_16", |b| {
        let mut delivered = VClock::new();
        let mut stamp = VClock::new();
        for i in 0..16u32 {
            delivered.set(Pid(i), 10);
            stamp.set(Pid(i), 10);
        }
        stamp.set(Pid(5), 11);
        b.iter(|| std::hint::black_box(delivered.deliverable(Pid(5), &stamp)));
    });
    g.finish();
}

fn bench_sim_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_step");
    g.sample_size(15).time_budget(std::time::Duration::from_secs(5));
    for n in [16usize, 64] {
        let hops = 300u64;
        g.bench_function(format!("relay_ring_n{n}"), |b| {
            b.iter_batched(
                || enginebench::relay_ring(n, 5),
                |(mut sim, pids)| {
                    assert_eq!(
                        enginebench::run_relay_ring(&mut sim, &pids, hops),
                        n as u64 * (hops + 1)
                    );
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_multicast(c: &mut Criterion) {
    let mut g = c.benchmark_group("multicast");
    g.sample_size(15).time_budget(std::time::Duration::from_secs(5));
    for n in [16usize, 64, 256] {
        g.bench_function(format!("fanout_n{n}"), |b| {
            b.iter_batched(
                || enginebench::fanout_star(n, 6),
                |(mut sim, hub)| {
                    assert_eq!(enginebench::run_fanout_star(&mut sim, hub, 200), 200);
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_flat_abcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("flat_group");
    g.sample_size(20);
    for n in [4usize, 8, 16] {
        g.bench_function(format!("abcast_n{n}"), |b| {
            b.iter_batched(
                || cluster(n, IsisConfig::quiet(), 42),
                |mut cl| {
                    let sender = cl.pids[0];
                    let gid = cl.gid;
                    for i in 0..10 {
                        cl.sim.invoke(sender, move |p, ctx| {
                            p.cast(gid, CastKind::Total, format!("m{i}"), ctx).unwrap();
                        });
                    }
                    cl.sim.run_for(SimDuration::from_secs(5));
                    assert_eq!(cl.sim.process(cl.pids[1]).app().payloads(gid).len(), 10);
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_flat_request(c: &mut Criterion) {
    let mut g = c.benchmark_group("request_path");
    g.sample_size(15);
    for n in [8usize, 32] {
        g.bench_function(format!("flat_request_n{n}"), |b| {
            b.iter_batched(
                || flat_service(n, 7),
                |mut svc| {
                    let members = svc.members.clone();
                    svc.sim.invoke(svc.client, move |p, ctx| {
                        p.with_app(ctx, |app, up| app.send_request(&members, "PUT k v", up))
                    });
                    svc.sim.run_for(SimDuration::from_secs(2));
                },
                BatchSize::PerIteration,
            );
        });
    }
    {
        let n = 32usize;
        g.bench_function(format!("hier_request_n{n}"), |b| {
            b.iter_batched(
                || {
                    hier_service_with(
                        n,
                        LargeGroupConfig::new(3, 4).counting(),
                        IsisConfig::quiet(),
                        7,
                    )
                },
                |mut svc| {
                    let dir = svc.directory();
                    let (leaf, _) = *isis_toolkit::hier::home_leaf(&dir, "k");
                    let targets = svc.leaf_members(leaf);
                    let client = svc.client;
                    svc.sim.invoke(client, move |p, ctx| {
                        p.with_app(ctx, |app, up| {
                            app.with_business(up, |biz, lup| {
                                biz.send_request_to(&targets, "PUT k v", lup);
                            });
                        });
                    });
                    svc.sim.run_for(SimDuration::from_secs(2));
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_tree_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_broadcast");
    g.sample_size(10);
    for n in [32usize, 96] {
        g.bench_function(format!("lbcast_n{n}"), |b| {
            b.iter_batched(
                || {
                    hier_service_with(
                        n,
                        LargeGroupConfig::new(3, 4).counting(),
                        IsisConfig::quiet(),
                        11,
                    )
                },
                |mut svc| {
                    let origin = svc.members[n / 2];
                    svc.sim.invoke(origin, move |p, ctx| {
                        p.with_app(ctx, |app, up| {
                            app.with_business(up, |_biz, lup| {
                                let me = lup.me();
                                lup.lbcast(
                                    LGID,
                                    isis_toolkit::hier::HSvcMsg::Reply {
                                        req: isis_toolkit::ReqId { client: me, seq: 0 },
                                        reply: "b".into(),
                                    },
                                );
                            });
                        });
                    });
                    svc.sim.run_for(SimDuration::from_secs(10));
                    assert!(
                        svc.sim.stats().counter("hier.lbcast.delivered") >= n as u64
                    );
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_view_change(c: &mut Criterion) {
    let mut g = c.benchmark_group("membership");
    g.sample_size(10);
    for n in [8usize, 32] {
        g.bench_function(format!("flat_view_change_n{n}"), |b| {
            b.iter_batched(
                || flat_service(n, 21),
                |mut svc| {
                    let victim = svc.members[n / 2];
                    svc.sim.crash(victim);
                    for &m in &svc.members.clone() {
                        if m != victim {
                            svc.sim.invoke(m, move |p, ctx| {
                                let _ = p.report_suspect(FLAT_GID, victim, ctx);
                            });
                        }
                    }
                    svc.sim.run_for(SimDuration::from_secs(10));
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vclock,
    bench_sim_step,
    bench_multicast,
    bench_flat_abcast,
    bench_flat_request,
    bench_tree_broadcast,
    bench_view_change
);
criterion_main!(benches);
