//! The parallel sweep runner must be invisible in the output: a QUICK
//! sweep run with `NOW_JOBS=1` and one with `NOW_JOBS=8` must emit
//! byte-identical tables — same rendered text, same JSON — because results
//! are collected by input index and every sweep point is an independently
//! seeded simulation. (Wall-clock fields and microbench timings are
//! machine-dependent and deliberately live outside the experiment tables.)
//!
//! Everything lives in ONE `#[test]`: `NOW_JOBS` is process-global, and a
//! single test body keeps the env-var window race-free within this binary.

use isis_bench::experiments as ex;

fn suite() -> String {
    // A cross-section of the harness: plain sweeps (E1, E4), a pure
    // computation (E7), a two-rows-per-point app driver (E9), a cartesian
    // point list (E10), and the fixed partition scenarios.
    [
        ex::e1(true),
        ex::e4(true),
        ex::e7(true),
        ex::e9(true),
        ex::e10(true),
        ex::partitions(true),
    ]
    .iter()
    .map(|t| format!("{}\n{}\n", t.render(), t.to_json()))
    .collect()
}

#[test]
fn quick_sweep_is_byte_identical_at_any_job_count() {
    std::env::set_var("NOW_JOBS", "1");
    let serial = suite();
    std::env::set_var("NOW_JOBS", "8");
    let parallel = suite();
    std::env::remove_var("NOW_JOBS");
    assert_eq!(
        serial, parallel,
        "NOW_JOBS must never change what a sweep emits"
    );
}

/// One engine-fixture run digested to a string: deliveries, kernel
/// checksums, the full counter table, and the final clock. Any divergence
/// between worker-shard layouts lands here.
fn relay_digest(jobs: usize, traced: bool) -> String {
    use isis_bench::enginebench as eb;
    let (mut sim, pids) = eb::relay_ring_jobs(64, 9, jobs);
    if traced {
        sim.set_tracer(now_trace::Tracer::new().retain_all());
    } else {
        sim.take_tracer();
    }
    let total = eb::run_relay_ring(&mut sim, &pids, 60);
    let trace = sim.take_tracer().map_or(0, |mut t| t.drain_events().len());
    format!(
        "total={total} sum={:x} counters={:?} now={} trace_events={trace}",
        eb::relay_digest(&sim, &pids),
        sim.stats().counters(),
        sim.now().as_micros(),
    )
}

/// The two parallelism layers compose: `NOW_JOBS` sweep workers each
/// running sims whose *internal* worker-shard count (`NOW_SIM_JOBS`,
/// pinned per-sim here to stay race-free) is 1, 2, or 4 — every
/// combination must produce the same bytes. Tracing on vs off must not
/// change the non-trace bytes either, in any layout.
#[test]
fn engine_shards_compose_with_sweep_workers() {
    let reference = relay_digest(1, false);
    for sweep_workers in [1usize, 4] {
        let points: Vec<usize> = vec![1, 2, 4, 1, 2, 4];
        let digests =
            isis_bench::par_sweep_jobs(sweep_workers, points, |j| relay_digest(j, false));
        for d in &digests {
            assert_eq!(
                d, &reference,
                "sim shards (NOW_SIM_JOBS analogue) leaked into results under \
                 {sweep_workers} sweep worker(s)"
            );
        }
    }
    // Tracing must be an observer: same non-trace bytes, and the trace
    // itself identical across shard layouts (compare via event count here;
    // the sim crate's own tests compare event-by-event).
    let traced_seq = relay_digest(1, true);
    let traced_par = relay_digest(4, true);
    assert_eq!(traced_seq, traced_par, "trace digest diverged across shard layouts");
    let (seq_head, _) = traced_seq.rsplit_once(" trace_events=").expect("digest shape");
    let (ref_head, _) = reference.rsplit_once(" trace_events=").expect("digest shape");
    assert_eq!(seq_head, ref_head, "arming the tracer changed the run itself");
}
