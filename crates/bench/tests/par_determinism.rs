//! The parallel sweep runner must be invisible in the output: a QUICK
//! sweep run with `NOW_JOBS=1` and one with `NOW_JOBS=8` must emit
//! byte-identical tables — same rendered text, same JSON — because results
//! are collected by input index and every sweep point is an independently
//! seeded simulation. (Wall-clock fields and microbench timings are
//! machine-dependent and deliberately live outside the experiment tables.)
//!
//! Everything lives in ONE `#[test]`: `NOW_JOBS` is process-global, and a
//! single test body keeps the env-var window race-free within this binary.

use isis_bench::experiments as ex;

fn suite() -> String {
    // A cross-section of the harness: plain sweeps (E1, E4), a pure
    // computation (E7), a two-rows-per-point app driver (E9), a cartesian
    // point list (E10), and the fixed partition scenarios.
    [
        ex::e1(true),
        ex::e4(true),
        ex::e7(true),
        ex::e9(true),
        ex::e10(true),
        ex::partitions(true),
    ]
    .iter()
    .map(|t| format!("{}\n{}\n", t.render(), t.to_json()))
    .collect()
}

#[test]
fn quick_sweep_is_byte_identical_at_any_job_count() {
    std::env::set_var("NOW_JOBS", "1");
    let serial = suite();
    std::env::set_var("NOW_JOBS", "8");
    let parallel = suite();
    std::env::remove_var("NOW_JOBS");
    assert_eq!(
        serial, parallel,
        "NOW_JOBS must never change what a sweep emits"
    );
}
