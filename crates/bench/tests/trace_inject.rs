//! Acceptance probe for the online monitors: a live cluster runs clean
//! under an armed tracer, and a deliberately seeded fault — a forged
//! `ViewInstall` disagreeing with the agreed membership — is caught by the
//! matching monitor (VS-VIEW) with a causal excerpt naming the offending
//! pids.

use isis_core::testutil::cluster;
use isis_core::IsisConfig;
use now_sim::SimDuration;
use now_trace::{EventKind, Tracer, ViolationMode};

#[test]
fn seeded_view_fault_is_caught_with_a_causal_excerpt() {
    let mut c = cluster(5, IsisConfig::default(), 97);
    c.sim.set_tracer(
        Tracer::new()
            .with_monitors(ViolationMode::Record)
            .retain_all(),
    );

    // Drive a real view change under the armed tracer.
    let victim = c.pids[4];
    c.sim.crash(victim);
    c.await_membership(4, SimDuration::from_secs(60));
    c.sim.run_for(SimDuration::from_secs(2));

    let tracer = c.sim.tracer_mut().expect("tracer attached");
    assert!(
        tracer.violations().is_empty(),
        "the healthy run must be violation-free: {:?}",
        tracer.violations()
    );

    // The most recent traced install is the post-crash view.
    let install = tracer
        .events()
        .into_iter()
        .rev()
        .find(|e| matches!(e.kind, EventKind::ViewInstall { .. }))
        .expect("the view change was traced");
    let EventKind::ViewInstall { gid, view, members, .. } = install.kind.clone() else {
        unreachable!("matched ViewInstall above");
    };

    // Seed the fault: a process claims the same (gid, view) with a
    // divergent membership.
    let mut forged = members.clone();
    forged.push(4242);
    tracer.inject(
        install.at + 1,
        4242,
        Some(install.seq),
        EventKind::ViewInstall { gid, view, members: forged, joined: false },
    );

    let v = tracer
        .violations()
        .iter()
        .find(|v| v.monitor == "VS-VIEW")
        .expect("the forged install is caught by the matching monitor");
    assert_eq!(v.pids[0], 4242, "the offender is named first");
    assert_eq!(v.pids.len(), 2, "…together with the first agreeing installer");
    assert!(
        v.excerpt.iter().any(|e| e.seq == install.seq),
        "the causal excerpt reaches back to the genuine install"
    );
    assert!(
        v.excerpt.last().is_some_and(|e| e.pid == 4242),
        "the excerpt ends at the offending event"
    );
}
