//! Determinism regression tests (detlint's dynamic counterpart): every
//! experiment table in EXPERIMENTS.md is an *exact* count, so two runs with
//! the same seed must be byte-identical, and the seed must actually matter
//! on a jittery network. A failure here means hidden nondeterminism crept
//! into the stack (hash-order iteration, wall-clock reads, unseeded RNG) —
//! exactly what detlint rules R1/R2 exist to keep out statically.

use isis_bench::experiments as ex;
use isis_bench::harness::FLAT_GID;
use isis_core::testutil::generic_cluster;
use isis_core::{IsisConfig, IsisProcess};
use isis_toolkit::flat::FlatService;
use now_sim::{SimConfig, SimDuration};

#[test]
fn e2_is_byte_identical_across_runs() {
    assert_eq!(ex::e2(true).render(), ex::e2(true).render());
}

#[test]
fn e8_is_byte_identical_across_runs() {
    assert_eq!(ex::e8(true).render(), ex::e8(true).render());
}

/// One client request against a flat service on a jittery LAN, digested into
/// a string covering message counts, every counter, and the exact microsecond
/// the run went quiet.
fn lan_digest(seed: u64) -> String {
    let (mut sim, members) = generic_cluster(
        6,
        FLAT_GID,
        IsisConfig::quiet(),
        SimConfig::lan(seed),
        |_| FlatService::new(FLAT_GID),
    );
    let nd = sim.add_nodes(1)[0];
    let client = sim.spawn(
        nd,
        IsisProcess::new(FlatService::new(FLAT_GID), IsisConfig::quiet()),
    );
    sim.run_for(SimDuration::from_secs(2));
    sim.invoke(client, move |p, ctx| {
        p.with_app(ctx, |app, up| app.send_request(&members, "PUT k v", up))
    });
    // Step until the client holds the reply: the arrival instant depends on
    // every jittered hop along the way, so it is a sharp determinism probe.
    let deadline = sim.now() + SimDuration::from_secs(30);
    while sim.process(client).app().replies.is_empty() && sim.now() < deadline {
        assert!(sim.step(), "run went quiet before the reply arrived");
    }
    let replied_at = sim.now().as_micros();
    assert!(
        !sim.process(client).app().replies.is_empty(),
        "client never got its reply"
    );
    sim.run_for(SimDuration::from_secs(2));
    let st = sim.stats();
    let mut d = format!(
        "sent={} delivered={} dropped={} bytes={} replied_at={}",
        st.messages_sent, st.messages_delivered, st.messages_dropped, st.bytes_sent, replied_at,
    );
    for (name, v) in st.counters() {
        d.push_str(&format!(" {name}={v}"));
    }
    d
}

#[test]
fn same_seed_same_digest_different_seed_different_digest() {
    let a1 = lan_digest(4242);
    let a2 = lan_digest(4242);
    assert_eq!(a1, a2, "same seed must replay byte-identically");

    let b = lan_digest(4243);
    assert_ne!(a1, b, "seed must influence the run on a jittery network");
}
