//! Shape tests: every experiment must reproduce the *shape* of its paper
//! claim (who wins, how costs scale), at quick-mode sizes. EXPERIMENTS.md
//! records the full-size tables.

use isis_bench::experiments as ex;
use isis_bench::par_sweep_jobs;

#[test]
fn whole_tables_render_identically_from_parallel_workers() {
    // Drive entire experiments through the runner itself (each worker
    // renders one full table): the same harness the sweeps use internally,
    // exercised here at the coarsest grain.
    type TableFn = fn(bool) -> isis_bench::Table;
    let fns: Vec<TableFn> = vec![ex::e1, ex::e7, ex::partitions];
    let serial = par_sweep_jobs(1, fns.clone(), |f| f(true).render());
    let parallel = par_sweep_jobs(4, fns, |f| f(true).render());
    assert_eq!(serial, parallel);
}

#[test]
fn e1_flat_is_exactly_2n_and_hier_is_leaf_bounded() {
    let t = ex::e1(true);
    for (i, row) in t.rows.iter().enumerate() {
        let n: f64 = row[t.col("n")].parse().unwrap();
        assert_eq!(t.f64(i, "flat_msgs"), 2.0 * n, "flat request must cost 2n");
        assert_eq!(t.f64(i, "flat_acting"), n, "all n members act");
        let leaf = t.f64(i, "leaf_size");
        assert_eq!(
            t.f64(i, "hier_msgs"),
            2.0 * leaf,
            "hier request must cost 2·leaf"
        );
    }
    // Hier cost must not grow with n while flat does.
    let last = t.rows.len() - 1;
    assert!(t.f64(last, "flat_msgs") > t.f64(0, "flat_msgs"));
    assert!(t.f64(last, "hier_msgs") <= 2.0 * 8.0);
}

#[test]
fn e2_flat_outgrows_hier_with_clients() {
    let t = ex::e2(true);
    let last = t.rows.len() - 1;
    // Ratio improves as client count grows (quadratic vs linear).
    assert!(t.f64(last, "flat/hier") > t.f64(0, "flat/hier"));
    assert!(t.f64(last, "flat/hier") >= 1.5);
    // Flat quadruples when clients double (c² scaling).
    let flat_ratio = t.f64(last, "flat_msgs") / t.f64(last - 1, "flat_msgs");
    assert!(flat_ratio >= 3.0, "flat scaling ratio {flat_ratio}");
}

#[test]
fn e3_flat_membership_cost_grows_hier_stays_bounded() {
    let t = ex::e3(true);
    let last = t.rows.len() - 1;
    assert!(t.f64(last, "flat_msgs") > 3.0 * t.f64(0, "flat_msgs"));
    // Hierarchical cost stays within a constant envelope.
    assert!(t.f64(last, "hier_msgs") <= 60.0);
    assert!(t.f64(last, "hier_disturbed") <= 20.0);
    // Flat disturbs everyone.
    let n: f64 = t.rows[last][t.col("n")].parse().unwrap();
    assert_eq!(t.f64(last, "flat_disturbed"), n - 1.0);
}

#[test]
fn e4_reliability_knee_and_resiliency_contract() {
    let t = ex::e4(true);
    // The no-load success probability saturates: beyond r=5 the gain is
    // below 1e-4 ("no practical advantage").
    let p5 = t
        .rows
        .iter()
        .find(|r| r[0] == "5")
        .map(|r| r[t.col("P_ok(p=.05)")].parse::<f64>().unwrap())
        .unwrap();
    assert!(1.0 - p5 < 1e-4);
    // With load-dependent failure, the biggest group is *less* reliable
    // than the r=5 one ("reliability will actually decrease").
    let load5 = t
        .rows
        .iter()
        .find(|r| r[0] == "5")
        .map(|r| r[t.col("P_ok_load")].parse::<f64>().unwrap())
        .unwrap();
    let load_last = t.f64(t.rows.len() - 1, "P_ok_load");
    assert!(load_last <= load5);
    // The simulated resiliency contract holds at every r.
    for row in &t.rows {
        assert_eq!(row[t.col("survives_r-1")], "true");
    }
}

#[test]
fn e6_failure_scope_bounded_for_hier() {
    let t = ex::e6(true);
    let last = t.rows.len() - 1;
    let n: f64 = t.rows[last][t.col("n")].parse().unwrap();
    assert_eq!(t.f64(last, "flat_notified"), n - 1.0);
    // Hier notification scope is independent of n (leaf + leader bound).
    let first_h = t.f64(0, "hier_notified");
    let last_h = t.f64(last, "hier_notified");
    assert!(last_h <= first_h + 4.0, "hier scope grew: {first_h} -> {last_h}");
    assert!(last_h <= 14.0);
}

#[test]
fn e7_storage_flat_linear_hier_constant() {
    let t = ex::e7(true);
    let last = t.rows.len() - 1;
    let n0: f64 = t.rows[0][t.col("n")].parse().unwrap();
    let nl: f64 = t.rows[last][t.col("n")].parse().unwrap();
    let flat_growth = t.f64(last, "flat_member_B") / t.f64(0, "flat_member_B");
    assert!(flat_growth > 0.5 * nl / n0, "flat storage must grow ~linearly");
    assert_eq!(
        t.f64(0, "hier_member_B"),
        t.f64(last, "hier_member_B"),
        "hier member storage independent of n"
    );
    assert_eq!(t.f64(0, "hier_rep_B"), t.f64(last, "hier_rep_B"));
}

#[test]
fn e7_measured_storage_matches_the_claim() {
    let (flat, hier) = ex::e7_measured(48, 9_000);
    assert!(
        flat > 2 * hier,
        "measured: flat member ({flat}B) must dwarf hier member ({hier}B) at n=48"
    );
}

#[test]
fn e8_fanout_bound_holds() {
    let t = ex::e8(true);
    for (i, row) in t.rows.iter().enumerate() {
        let max_dests = t.f64(i, "max_dests");
        let bound = t.f64(i, "bound");
        assert!(
            max_dests <= bound,
            "row {row:?}: destinations {max_dests} exceed bound {bound}"
        );
        // Everything delivered: total messages at least n (one per member).
        let n: f64 = row[t.col("n")].parse().unwrap();
        assert!(t.f64(i, "total_msgs") >= n);
    }
}

#[test]
fn partitions_never_split_brain() {
    let t = ex::partitions(true);
    for row in &t.rows {
        assert_eq!(row[t.col("majority_view")], "true");
        assert_eq!(row[t.col("minority_stalled")], "true");
        assert_eq!(row[t.col("split_brain")], "false");
    }
}
