//! The tracer must be a *pure observer*: with tracing (and the online
//! invariant monitors) armed, every protocol run must be byte-identical to
//! the untraced run — same message counts, same counters, same quiescence
//! instant. This is the dynamic proof of the "tracing disabled → zero
//! protocol cost" claim, and it doubles as a monitor-armed sweep of two
//! real experiments (panic mode: any invariant violation aborts the test).
//!
//! Everything lives in ONE `#[test]` because arming via `NOW_MONITORS`
//! mutates process-global state; a single test body keeps the env-var
//! window race-free within this binary.

use isis_bench::experiments as ex;
use isis_bench::harness::FLAT_GID;
use isis_core::testutil::generic_cluster;
use isis_core::{IsisConfig, IsisProcess};
use isis_toolkit::flat::FlatService;
use now_sim::{SimConfig, SimDuration};
use now_trace::{Tracer, ViolationMode};

/// One client request against a flat service on a jittery LAN, digested
/// into message counts, every counter, and the reply instant (the same
/// probe as `determinism.rs`), with an optional tracer attached.
fn lan_digest(seed: u64, tracer: Option<Tracer>) -> (String, Option<Tracer>) {
    let (mut sim, members) = generic_cluster(
        6,
        FLAT_GID,
        IsisConfig::quiet(),
        SimConfig::lan(seed),
        |_| FlatService::new(FLAT_GID),
    );
    if let Some(t) = tracer {
        sim.set_tracer(t);
    }
    let nd = sim.add_nodes(1)[0];
    let client = sim.spawn(
        nd,
        IsisProcess::new(FlatService::new(FLAT_GID), IsisConfig::quiet()),
    );
    sim.run_for(SimDuration::from_secs(2));
    sim.invoke(client, move |p, ctx| {
        p.with_app(ctx, |app, up| app.send_request(&members, "PUT k v", up))
    });
    let deadline = sim.now() + SimDuration::from_secs(30);
    while sim.process(client).app().replies.is_empty() && sim.now() < deadline {
        assert!(sim.step(), "run went quiet before the reply arrived");
    }
    let replied_at = sim.now().as_micros();
    assert!(
        !sim.process(client).app().replies.is_empty(),
        "client never got its reply"
    );
    sim.run_for(SimDuration::from_secs(2));
    let st = sim.stats();
    let mut d = format!(
        "sent={} delivered={} dropped={} bytes={} replied_at={}",
        st.messages_sent, st.messages_delivered, st.messages_dropped, st.bytes_sent, replied_at,
    );
    for (name, v) in st.counters() {
        d.push_str(&format!(" {name}={v}"));
    }
    (d, sim.take_tracer())
}

#[test]
fn tracing_on_and_off_runs_are_byte_identical_and_monitors_stay_quiet() {
    // --- LAN request probe: off vs monitors-armed (record mode so we can
    // inspect the violation list afterwards). ---
    let (off, none) = lan_digest(4242, None);
    assert!(none.is_none(), "no tracer was attached");
    let armed = Tracer::new().with_monitors(ViolationMode::Record);
    let (on, tracer) = lan_digest(4242, Some(armed));
    assert_eq!(off, on, "tracing must not perturb the run");

    let tracer = tracer.expect("tracer attached, so take_tracer returns it");
    assert!(
        tracer.monitored_events() > 0,
        "the monitors actually saw protocol events"
    );
    assert!(
        tracer.violations().is_empty(),
        "clean run reported violations: {:?}",
        tracer.violations()
    );
    // The trace itself carries real protocol structure: at least one
    // delivery linked back to its send.
    let events = tracer.events();
    assert!(events.iter().any(|e| e.cause.is_some()));

    // --- E2 + E8 quick experiments: baseline vs NOW_MONITORS=1 (panic
    // mode — a violation anywhere in either experiment aborts here). ---
    let base_e2 = ex::e2(true).render();
    let base_e8 = ex::e8(true).render();
    std::env::set_var("NOW_MONITORS", "1");
    let armed_e2 = ex::e2(true).render();
    let armed_e8 = ex::e8(true).render();
    std::env::remove_var("NOW_MONITORS");
    assert_eq!(base_e2, armed_e2, "E2 must be byte-identical under monitors");
    assert_eq!(base_e8, armed_e8, "E8 must be byte-identical under monitors");
}
