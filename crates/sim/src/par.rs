//! Conservative parallel execution of a single simulation run.
//!
//! One `Sim::run_*` call is split into *cycles*. At the start of a cycle the
//! main sim is **exploded**: process slots, their queued events, and their
//! FIFO channel rows move to `jobs` worker shards (whole nodes, round-robin
//! by node id, so loopback and same-node traffic never cross a shard). The
//! workers then execute lock-step *windows*: the coordinator picks the
//! earliest pending event time `t` across all shards and tells every worker
//! to run events strictly below the horizon `h = t + lookahead`, where
//! `lookahead` is the minimum internode latency ([`NetConfig::lookahead`]).
//! No message sent at or after `t` can arrive before `h`, so the windows are
//! safe — the classic conservative (Chandy–Misra style) argument, with the
//! barrier playing the role of null messages.
//!
//! Cross-shard sends travel as [`Mail`] over bounded mpsc channels. The
//! coordinator tracks a cumulative sent-matrix / received-vector from the
//! window reports and tells each worker, before every window, exactly how
//! much mail is bound for it (`expect`); the worker blocks until that much
//! has arrived, so no delivery can be missed and a stalled shard costs at
//! most one empty catch-up window.
//!
//! Control events (crash / restart / partition — queue class 0) are global:
//! a cycle runs strictly below the earliest control's time, the shards fold
//! back into the main sim, the control is applied sequentially, and the next
//! cycle re-explodes. Controls are rare (they come from the failure
//! injector), so the O(procs + queue) explode/merge cost is paid rarely.
//!
//! # Determinism
//!
//! Parallel runs are *byte-identical* to sequential runs. Every per-process
//! effect — RNG draws, event seqs, timer ids, wire handles — comes from
//! per-slot state advanced in that slot's own execution order, which is the
//! same under any shard count. The two globally ordered artefacts are
//! rebuilt at the window barrier:
//!
//! * **Trace / observation order**: each worker records into a private
//!   tracer and observation log, and tags every executed event that emitted
//!   something with its queue key `(at, class, seq, src)` (a [`Chunk`]).
//!   The coordinator k-way merges the chunk lists — preserving each
//!   worker's own order and choosing the smallest head key — and re-records
//!   the events into the main tracer, which assigns the global seqs. The
//!   merge reproduces the sequential order exactly: same-shard order is
//!   kept verbatim (this matters — a zero-delay timer chain executes in
//!   generation order, not key order), and cross-shard same-time events are
//!   causally independent (anything crossing a shard is at least
//!   `lookahead` away), so the sequential engine would have ordered them by
//!   key, which is what the head comparison does.
//! * **Wire ids**: with `jobs > 1`, a traced send is labelled with a
//!   per-process *handle* (bit 63 set) instead of its trace seq. When the
//!   merge re-records the `NetSend` it learns the global seq and registers
//!   it in `Sim::wire_map`; the matching delivery/drop — merged strictly
//!   later — resolves and retires the handle.
//!
//! Stats are simpler: each worker owns its shard's table (interned counter
//! ids stay valid), and the tables are drained into the main one, keyed by
//! name, when the shards fold back. Counter addition is commutative and
//! series reducers are order-insensitive, so no event-order bookkeeping is
//! needed.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};

use now_trace::{EventKind, TraceEvent, Tracer};

use crate::det_rand::DetRng;
use crate::engine::{Event, EventKey, Payload, Process, Sim, WIRE_HANDLE};
use crate::ids::NodeId;
use crate::stats::{Observation, ObservationLog};
use crate::time::SimTime;
use crate::transport::Endpoint;

/// Bound on each shard's mail inbox. Senders never block on a full inbox
/// (they drain their own and yield — see `Sim::post_mail`), so the bound
/// only limits memory, not progress.
const MAIL_CAP: usize = 4096;

/// A cross-shard delivery in flight: everything `Sim::ingest_mail` needs to
/// enqueue the `Deliver` under exactly the key it would have had in a
/// sequential run.
pub(crate) struct Mail<M> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) src: u32,
    pub(crate) to: crate::ids::Pid,
    pub(crate) payload: Payload<M>,
    pub(crate) wire: u64,
    pub(crate) inc: u32,
}

/// Worker-side shard state, carried inside the worker's `Sim` (its presence
/// is what marks a sim as a shard).
pub(crate) struct ShardCtx<M> {
    /// This shard's index in `0..jobs`.
    pub(crate) id: usize,
    /// Hosting node of every pid (local or remote) — routing needs the
    /// destination's node even when its slot lives on another shard.
    pub(crate) pid_nodes: Vec<NodeId>,
    /// Incarnation of every pid at cycle start. Constant within a cycle:
    /// incarnations only change through control events, which run between
    /// cycles.
    pub(crate) remote_incs: Vec<u32>,
    /// Mail senders to every shard (own entry unused).
    pub(crate) mail_out: Vec<SyncSender<Mail<M>>>,
    /// This shard's mail inbox.
    pub(crate) mail_in: Receiver<Mail<M>>,
    /// Cumulative mail posted to each shard over the whole cycle.
    pub(crate) sent_cum: Vec<u64>,
    /// Cumulative mail ingested over the whole cycle.
    pub(crate) recv_cum: u64,
    /// Wire handles allocated this window, with the *local* trace seq of
    /// their `NetSend`; the merge registers handle → global seq.
    pub(crate) wire_regs: Vec<(u64, u64)>,
}

/// Coordinator → worker command.
enum Cmd {
    /// Ingest mail until `expect` items (cumulative) have arrived, then
    /// execute queued events strictly below `h` and report.
    Execute { h: SimTime, expect: u64 },
    /// Ingest mail until `expect` items have arrived, then return the shard
    /// sim to the coordinator.
    Finish { expect: u64 },
}

/// One executed event that emitted trace events and/or observations: the
/// unit of the deterministic merge. `tr` is a `(from, to]` range of local
/// trace seqs, `obs` a `[from, to)` range of indices into the window's
/// drained observation list.
struct Chunk {
    key: EventKey,
    tr: (u64, u64),
    obs: (usize, usize),
}

/// Worker → coordinator window report.
struct WindowReport {
    /// Time of this shard's next pending event (`SimTime(u64::MAX)` if its
    /// queue is empty). May understate the truth when mail is still in
    /// flight; the coordinator accounts for that separately.
    next_at: SimTime,
    sent_cum: Vec<u64>,
    recv_cum: u64,
    tr_events: Vec<TraceEvent>,
    obs: Vec<Observation>,
    chunks: Vec<Chunk>,
    wire_regs: Vec<(u64, u64)>,
}

/// Runs `sim` in parallel windows until no event at or before `limit`
/// remains. Semantics match the sequential loops exactly: events at `limit`
/// are executed, later ones stay queued. Returns whether the queue drained
/// (`run_to_quiescence`'s contract; `run_until` ignores it).
pub(crate) fn run_parallel<P: Process>(sim: &mut Sim<P>, limit: SimTime, quiesce: bool) -> bool {
    debug_assert!(sim.jobs > 1 && sim.shard.is_none());
    loop {
        // Earliest queued control event: the cycle must stop just short of
        // it so it applies against the folded-back global state.
        let tc = sim
            .queue
            .iter()
            .filter(|r| r.0.class == 0)
            .map(|r| r.0.at)
            .min()
            .unwrap_or(SimTime(u64::MAX));
        let cycle_limit = SimTime(tc.0.min(limit.0.saturating_add(1)));
        if sim.queue.peek().is_some_and(|r| r.0.at < cycle_limit) {
            parallel_cycle(sim, cycle_limit);
        }
        if tc > limit {
            break;
        }
        // Apply the control sequentially (it is the minimal queue entry:
        // everything earlier was just executed, and class 0 sorts first
        // among same-time entries), then start the next cycle.
        sim.step();
    }
    !quiesce || sim.queue.is_empty()
}

/// One explode → windowed-execution → merge-back cycle, executing every
/// queued event strictly below `cycle_limit`.
fn parallel_cycle<P: Process>(sim: &mut Sim<P>, cycle_limit: SimTime) {
    let jobs = sim.jobs;
    let lookahead = sim.cfg.net.lookahead();
    let workers = explode(sim);
    let mut nexts: Vec<SimTime> = workers
        .iter()
        .map(|w| w.queue.peek().map_or(SimTime(u64::MAX), |r| r.0.at))
        .collect();
    // Per-worker local→global trace-seq maps, alive for the whole cycle:
    // causes can reference events merged in an earlier window (e.g. a timer
    // armed long before it fires).
    let mut maps: Vec<BTreeMap<u64, u64>> = (0..jobs).map(|_| BTreeMap::new()).collect();

    let finished: Vec<Sim<P>> = std::thread::scope(|s| {
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(jobs);
        let mut rep_rxs: Vec<Receiver<WindowReport>> = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for w in workers {
            let (ctx, crx) = channel::<Cmd>();
            let (rtx, rrx) = channel::<WindowReport>();
            cmd_txs.push(ctx);
            rep_rxs.push(rrx);
            handles.push(s.spawn(move || worker_loop(w, crx, rtx)));
        }

        // sent[j][k]: cumulative mail worker j reported posting to k.
        let mut sent = vec![vec![0u64; jobs]; jobs];
        let mut recv = vec![0u64; jobs];
        let mut h_last = sim.ep.now;
        let mut worker_died = false;
        loop {
            let mut t = nexts.iter().copied().min().unwrap_or(SimTime(u64::MAX));
            let posted: u64 = sent.iter().map(|row| row.iter().sum::<u64>()).sum();
            let ingested: u64 = recv.iter().sum();
            if posted > ingested {
                // Mail is in flight; its deliveries land at or after the
                // last horizon, so a (possibly empty) window there forces
                // the drain and makes every `next_at` accurate again.
                t = t.min(h_last);
            }
            if t >= cycle_limit {
                break;
            }
            let h = (t + lookahead).min(cycle_limit);
            for (k, tx) in cmd_txs.iter().enumerate() {
                let expect: u64 = (0..jobs).map(|j| sent[j][k]).sum();
                if tx.send(Cmd::Execute { h, expect }).is_err() {
                    worker_died = true;
                }
            }
            let mut reports: Vec<Option<WindowReport>> = (0..jobs).map(|_| None).collect();
            for (j, rx) in rep_rxs.iter().enumerate() {
                match rx.recv() {
                    Ok(r) => reports[j] = Some(r),
                    Err(_) => {
                        worker_died = true;
                        break;
                    }
                }
            }
            if worker_died {
                break;
            }
            let reports: Vec<WindowReport> =
                reports.into_iter().map(|r| r.expect("report collected")).collect();
            for (j, r) in reports.iter().enumerate() {
                nexts[j] = r.next_at;
                sent[j].copy_from_slice(&r.sent_cum);
                recv[j] = r.recv_cum;
            }
            merge_window(sim, &reports, &mut maps);
            h_last = h;
        }

        // Wind down: every worker drains the mail still addressed to it
        // (those deliveries are at or beyond `cycle_limit`), then hands its
        // shard back. `sent` is final — mail is only posted while executing
        // a window, and every window has been reported.
        for (k, tx) in cmd_txs.iter().enumerate() {
            let expect: u64 = (0..jobs).map(|j| sent[j][k]).sum();
            let _ = tx.send(Cmd::Finish { expect });
        }
        drop(cmd_txs);
        let mut out = Vec::with_capacity(jobs);
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(w) => out.push(w),
                Err(e) => panic = Some(e),
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
        assert!(
            !worker_died,
            "a worker shard exited without reporting its window"
        );
        out
    });
    merge_back(sim, finished);
}

/// Splits the main sim into `jobs` worker shards: whole nodes round-robin
/// by node id. Moves out process slots, their queued class-1 events (with
/// payloads re-slabbed), their FIFO channel rows, and the per-shard stats
/// tables; control events stay behind in the main queue.
fn explode<P: Process>(sim: &mut Sim<P>) -> Vec<Sim<P>> {
    let jobs = sim.jobs;
    let n = sim.procs.len();
    let tracing = sim.ep.tracing();
    let now = sim.ep.now;

    let pid_nodes: Vec<NodeId> = sim
        .procs
        .iter()
        .map(|s| s.as_ref().map_or(NodeId(u32::MAX), |s| s.node))
        .collect();
    let remote_incs: Vec<u32> = sim
        .procs
        .iter()
        .map(|s| s.as_ref().map_or(0, |s| s.incarnation))
        .collect();

    let (mail_txs, mail_rxs): (Vec<_>, Vec<_>) =
        (0..jobs).map(|_| sync_channel::<Mail<P::Msg>>(MAIL_CAP)).unzip();
    let mut mail_rxs: Vec<Option<Receiver<Mail<P::Msg>>>> =
        mail_rxs.into_iter().map(Some).collect();

    let clock_rows = n.max(sim.channel_clock.len());
    let mut workers: Vec<Sim<P>> = (0..jobs)
        .map(|j| Sim {
            cfg: sim.cfg.clone(),
            ext_seq: 0,
            ext_wire: 0,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            free_payloads: Vec::new(),
            procs: (0..n).map(|_| None).collect(),
            node_sites: sim.node_sites.clone(),
            partition: sim.partition.clone(),
            ep: Endpoint {
                now,
                // Never drawn from: every draw in a worker comes from a
                // per-slot stream.
                rng: DetRng::seed_from_u64(0),
                stats: std::mem::take(&mut sim.shard_stats[j]),
                obs: ObservationLog::default(),
                next_timer: 0,
                scratch: Vec::new(),
                tracer: tracing.then(|| Tracer::new().retain_all()),
            },
            channel_clock: (0..clock_rows).map(|_| Vec::new()).collect(),
            respawn: sim.respawn.clone(),
            jobs,
            shard_stats: Vec::new(),
            wire_map: BTreeMap::new(),
            shard: Some(ShardCtx {
                id: j,
                pid_nodes: pid_nodes.clone(),
                remote_incs: remote_incs.clone(),
                mail_out: mail_txs.clone(),
                mail_in: mail_rxs[j].take().expect("inbox taken once"),
                sent_cum: vec![0; jobs],
                recv_cum: 0,
                wire_regs: Vec::new(),
            }),
        })
        .collect();
    drop(mail_txs);

    // Workers book sends through their own table (`ep.stats` *is* the
    // shard table inside a worker), so the fanout census must be armed
    // there too — otherwise every send made inside a parallel window
    // vanishes from `max_distinct_destinations` and the E8/E9 fanout
    // columns change with the job count.
    if sim.ep.stats.fanout_tracking_enabled() {
        for w in &mut workers {
            w.ep.stats.enable_fanout_tracking();
        }
    }

    for i in 0..n {
        if let Some(slot) = sim.procs[i].take() {
            let j = slot.node.0 as usize % jobs;
            workers[j].procs[i] = Some(slot);
        }
    }
    for (i, row_slot) in sim.channel_clock.iter_mut().enumerate() {
        let row = std::mem::take(row_slot);
        if row.is_empty() {
            continue;
        }
        // Rows are keyed by *sender*, which executes on its own shard.
        let node = pid_nodes[i];
        let j = if node.0 == u32::MAX { 0 } else { node.0 as usize % jobs };
        workers[j].channel_clock[i] = row;
    }

    let entries = std::mem::take(&mut sim.queue);
    for Reverse(mut e) in entries.into_vec() {
        if e.class == 0 {
            sim.queue.push(Reverse(e));
            continue;
        }
        let owner = match &e.ev {
            Event::Start { pid, .. } => *pid,
            Event::Deliver { to, .. } => *to,
            Event::Timer { pid, .. } => *pid,
            // Controls are class 0 and were kept above.
            _ => {
                sim.queue.push(Reverse(e));
                continue;
            }
        };
        let node = pid_nodes[owner.0 as usize];
        let j = if node.0 == u32::MAX { 0 } else { node.0 as usize % jobs };
        if let Event::Deliver { payload, .. } = &mut e.ev {
            let p = sim.take_payload(*payload);
            *payload = workers[j].store_payload(p);
        }
        workers[j].queue.push(Reverse(e));
    }
    workers
}

/// The worker thread: executes windows on its shard sim until told to
/// finish (or the coordinator goes away), then returns the sim.
fn worker_loop<P: Process>(
    mut sim: Sim<P>,
    cmds: Receiver<Cmd>,
    reports: Sender<WindowReport>,
) -> Sim<P> {
    // recv() Err means the coordinator is gone (panic unwinding):
    // stop where we are.
    while let Ok(cmd) = cmds.recv() {
        match cmd {
            Cmd::Execute { h, expect } => {
                sim.drain_mail_to(expect);
                let mut chunks = Vec::new();
                loop {
                    let tr0 = sim.ep.tracer.as_ref().map_or(0, Tracer::last_seq);
                    let ob0 = sim.ep.obs.all().len();
                    let Some(key) = sim.step_bounded(h) else { break };
                    let tr1 = sim.ep.tracer.as_ref().map_or(0, Tracer::last_seq);
                    let ob1 = sim.ep.obs.all().len();
                    if tr1 > tr0 || ob1 > ob0 {
                        chunks.push(Chunk { key, tr: (tr0, tr1), obs: (ob0, ob1) });
                    }
                }
                let next_at = sim.queue.peek().map_or(SimTime(u64::MAX), |r| r.0.at);
                let tr_events = sim
                    .ep
                    .tracer
                    .as_mut()
                    .map_or_else(Vec::new, Tracer::drain_events);
                let obs = sim.ep.obs.drain_entries();
                let (sent_cum, recv_cum, wire_regs) = {
                    let sc = sim.shard.as_mut().expect("worker sims are shards");
                    (
                        sc.sent_cum.clone(),
                        sc.recv_cum,
                        std::mem::take(&mut sc.wire_regs),
                    )
                };
                let report = WindowReport {
                    next_at,
                    sent_cum,
                    recv_cum,
                    tr_events,
                    obs,
                    chunks,
                    wire_regs,
                };
                if reports.send(report).is_err() {
                    break;
                }
            }
            Cmd::Finish { expect } => {
                sim.drain_mail_to(expect);
                break;
            }
        }
    }
    sim
}

/// Re-records one window's trace events and observations into the main
/// tracer/log in the deterministic global order: a k-way merge over the
/// workers' chunk lists that preserves each worker's own order and picks
/// the smallest head key — exactly the order the sequential engine would
/// have produced (see the module docs for why).
fn merge_window<P: Process>(
    sim: &mut Sim<P>,
    reports: &[WindowReport],
    maps: &mut [BTreeMap<u64, u64>],
) {
    let jobs = reports.len();
    // handle → local NetSend seq, per worker, this window.
    let regs: Vec<BTreeMap<u64, u64>> = reports
        .iter()
        .map(|r| r.wire_regs.iter().map(|&(h, s)| (s, h)).collect())
        .collect();
    // Local seqs are contiguous; index = seq - base.
    let bases: Vec<u64> = reports
        .iter()
        .map(|r| r.tr_events.first().map_or(0, |e| e.seq))
        .collect();
    let mut idx = vec![0usize; jobs];
    loop {
        let mut best: Option<(EventKey, usize)> = None;
        for (j, r) in reports.iter().enumerate() {
            if let Some(c) = r.chunks.get(idx[j]) {
                if best.is_none_or(|(k, _)| c.key < k) {
                    best = Some((c.key, j));
                }
            }
        }
        let Some((_, j)) = best else { break };
        let c = &reports[j].chunks[idx[j]];
        idx[j] += 1;
        for s in (c.tr.0 + 1)..=c.tr.1 {
            let e = &reports[j].tr_events[(s - bases[j]) as usize];
            debug_assert_eq!(e.seq, s, "worker trace seqs must be contiguous");
            let cause = e.cause.map(|x| {
                if x & WIRE_HANDLE != 0 {
                    // A wire handle: its NetSend merged strictly earlier.
                    *sim.wire_map.get(&x).expect("cause wire handle unregistered")
                } else {
                    *maps[j].get(&x).expect("cause event not yet merged")
                }
            });
            let kind = rewrite_terminal(e.kind.clone(), &mut sim.wire_map);
            let g = sim
                .ep
                .tracer
                .as_mut()
                .expect("merging trace chunks with the tracer off")
                .record(e.at, e.pid, cause, kind);
            maps[j].insert(e.seq, g);
            if let Some(&h) = regs[j].get(&e.seq) {
                sim.wire_map.insert(h, g);
            }
        }
        for o in &reports[j].obs[c.obs.0..c.obs.1] {
            sim.ep.obs.append(o.clone());
        }
    }
}

/// Resolves the wire handle in a terminal event (delivery/drop), retiring
/// it: in a sharded run every traced wire id is a handle.
fn rewrite_terminal(kind: EventKind, wire_map: &mut BTreeMap<u64, u64>) -> EventKind {
    let resolve = |wire_map: &mut BTreeMap<u64, u64>, send: u64| -> u64 {
        if send == 0 {
            return 0;
        }
        assert!(send & WIRE_HANDLE != 0, "raw wire id in a sharded run");
        wire_map
            .remove(&send)
            .expect("terminal wire handle unregistered")
    };
    match kind {
        EventKind::NetDeliver { from, send } => {
            EventKind::NetDeliver { from, send: resolve(wire_map, send) }
        }
        EventKind::NetDrop { to, send } => {
            EventKind::NetDrop { to, send: resolve(wire_map, send) }
        }
        EventKind::StaleDrop { to, incarnation, send } => {
            EventKind::StaleDrop { to, incarnation, send: resolve(wire_map, send) }
        }
        other => other,
    }
}

/// Folds the worker shards back into the main sim: slots, remaining queued
/// events (payloads re-slabbed), FIFO channel rows, shard stats tables
/// (drained into the main table, keyed by name), and the clock.
fn merge_back<P: Process>(sim: &mut Sim<P>, finished: Vec<Sim<P>>) {
    for (j, mut w) in finished.into_iter().enumerate() {
        for i in 0..w.procs.len() {
            if w.procs[i].is_some() {
                sim.procs[i] = w.procs[i].take();
            }
        }
        while let Some(Reverse(mut e)) = w.queue.pop() {
            if let Event::Deliver { payload, .. } = &mut e.ev {
                let p = w.take_payload(*payload);
                *payload = sim.store_payload(p);
            }
            sim.queue.push(Reverse(e));
        }
        if sim.channel_clock.len() < w.channel_clock.len() {
            sim.channel_clock.resize(w.channel_clock.len(), Vec::new());
        }
        for i in 0..w.channel_clock.len() {
            if !w.channel_clock[i].is_empty() {
                sim.channel_clock[i] = std::mem::take(&mut w.channel_clock[i]);
            }
        }
        sim.shard_stats[j] = std::mem::take(&mut w.ep.stats);
        if w.ep.now > sim.ep.now {
            sim.ep.now = w.ep.now;
        }
    }
    let Sim { ep, shard_stats, .. } = sim;
    for t in shard_stats.iter_mut() {
        t.drain_into(&mut ep.stats);
    }
}

#[cfg(test)]
mod tests {
    use now_trace::Tracer;

    use crate::engine::{Process, Sim, SimConfig};
    use crate::ids::{Pid, TimerId};
    use crate::net::Partition;
    use crate::time::{SimDuration, SimTime};
    use crate::transport::Ctx;
    use crate::Rng;

    /// A deliberately messy workload: token forwarding with per-hop RNG
    /// draws, random timers, zero-delay timer chains (same-time events
    /// generated mid-window — the k-way merge's hard case), multicast,
    /// observations, counters, and series samples.
    struct Token {
        peers: u32,
    }

    impl Process for Token {
        type Msg = (u32, u64);

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            ctx.observe("started", f64::from(ctx.me().0));
            let delay = ctx.rng().gen_range(100..5_000);
            ctx.set_timer(SimDuration::from_micros(delay), 1);
        }

        fn on_message(&mut self, _from: Pid, (hops, acc): Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
            ctx.bump("tokens");
            ctx.sample("hop_acc", acc as f64);
            if hops == 0 {
                ctx.observe("token_died", acc as f64);
                return;
            }
            let next = Pid(ctx.rng().gen_range(0..u64::from(self.peers)) as u32);
            let acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(u64::from(hops));
            ctx.send(next, (hops - 1, acc));
            if hops % 7 == 0 {
                // Occasionally fan out to two more peers through one
                // shared multicast payload.
                let a = Pid(ctx.rng().gen_range(0..u64::from(self.peers)) as u32);
                let b = Pid(ctx.rng().gen_range(0..u64::from(self.peers)) as u32);
                ctx.multicast([a, b], (1, acc));
            }
            if hops % 5 == 0 {
                // Zero-delay timer: fires at the *same* simulated time,
                // after this event, with a key that may sort before the
                // events this handler just pushed.
                ctx.set_timer(SimDuration::ZERO, 2);
            }
        }

        fn on_timer(&mut self, _id: TimerId, kind: u32, ctx: &mut Ctx<'_, Self::Msg>) {
            match kind {
                1 => {
                    let next = Pid(ctx.rng().gen_range(0..u64::from(self.peers)) as u32);
                    ctx.send(next, (20, u64::from(ctx.me().0)));
                }
                _ => {
                    ctx.bump("zero_delay_fired");
                    ctx.observe("chain", f64::from(ctx.incarnation()));
                }
            }
        }
    }

    /// Runs the full scenario — two run calls, four scheduled controls, a
    /// crash→quick-restart overlap that forces stale drops — and returns
    /// every externally visible byte.
    fn run(jobs: usize, tracing: bool) -> (String, Vec<now_trace::TraceEvent>, bool) {
        let n_procs: u32 = 16;
        let mut sim: Sim<Token> = Sim::new(SimConfig::lan(42));
        sim.set_jobs(jobs);
        if tracing {
            sim.set_tracer(Tracer::new().retain_all());
        }
        let nodes = sim.add_nodes(8);
        sim.stats_mut().enable_fanout_tracking();
        for i in 0..n_procs {
            sim.spawn(nodes[i as usize % nodes.len()], Token { peers: n_procs });
        }
        sim.set_respawn(move |_| Token { peers: n_procs });
        for i in 0..80u32 {
            sim.inject(Pid(i % n_procs), (40, u64::from(i)));
        }
        sim.schedule_crash(Pid(3), SimTime(12_000));
        // Restart before the crashed pid's in-flight traffic lands (LAN
        // latency is ~1ms): those deliveries must be dropped as stale,
        // identically in both modes.
        sim.schedule_restart(Pid(3), SimTime(12_050));
        sim.schedule_partition(
            SimTime(20_000),
            Partition::split([nodes[0], nodes[1]]),
        );
        sim.schedule_partition(SimTime(26_000), Partition::connected());
        sim.run_until(SimTime(18_000));
        let quiesced = sim.run_to_quiescence(SimTime(5_000_000));

        let mut digest = String::new();
        digest.push_str(&format!("now={:?}\n", sim.now()));
        digest.push_str(&format!("counters={:?}\n", sim.stats().counters()));
        for i in 0..n_procs {
            digest.push_str(&format!("proc{}={:?}\n", i, sim.stats().proc(Pid(i))));
        }
        // The fanout census is booked in whichever table executed the
        // send (worker shards included) — a regression here means windowed
        // sends fell out of the distinct-destination sets.
        digest.push_str(&format!(
            "fanout: max={} per_proc={:?}\n",
            sim.stats().max_distinct_destinations(),
            (0..n_procs)
                .map(|i| sim.stats().distinct_destinations(Pid(i)))
                .collect::<Vec<_>>()
        ));
        let s = sim.stats().series("hop_acc");
        digest.push_str(&format!(
            "hop_acc: len={} mean={} p50={} min={} max={}\n",
            s.len(),
            s.mean(),
            s.p50(),
            s.min(),
            s.max()
        ));
        digest.push_str(&format!("obs={:?}\n", sim.observations().all()));
        digest.push_str(&format!(
            "armed={} chans={} pending={} alive={:?}\n",
            sim.armed_timers(),
            sim.live_channel_entries(),
            sim.pending_events(),
            sim.alive_pids()
        ));
        let events = sim
            .take_tracer()
            .map(|mut t| t.drain_events())
            .unwrap_or_default();
        (digest, events, quiesced)
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let (base, base_ev, base_q) = run(1, true);
        assert!(
            base_ev.iter().any(|e| e.kind.name() == "STALE_DROP"),
            "scenario must exercise stale drops"
        );
        assert!(
            base_ev.iter().any(|e| e.kind.name() == "NET_DROP"),
            "scenario must exercise partition/dead drops"
        );
        for jobs in [2, 4, 5] {
            let (d, ev, q) = run(jobs, true);
            assert_eq!(base_q, q, "quiescence verdict changed at jobs={jobs}");
            assert_eq!(base, d, "stats/obs digest changed at jobs={jobs}");
            assert_eq!(base_ev.len(), ev.len(), "trace length changed at jobs={jobs}");
            for (a, b) in base_ev.iter().zip(&ev) {
                assert_eq!(a, b, "trace diverged at jobs={jobs}");
            }
        }
    }

    #[test]
    fn tracing_off_does_not_change_the_run() {
        let (base, _, _) = run(1, false);
        let (par, ev, _) = run(4, false);
        assert_eq!(base, par);
        assert!(ev.is_empty());
        // And a traced run produces the same non-trace bytes.
        let (traced, _, _) = run(4, true);
        assert_eq!(base, traced);
    }

    /// The scenario must actually finish (and with it, every worker thread
    /// a cycle spawned must have been joined — `thread::scope` guarantees
    /// it, this pins the run itself terminating).
    #[test]
    fn parallel_scenario_quiesces() {
        let (_, _, quiesced) = run(4, true);
        assert!(quiesced, "scenario should quiesce well before the limit");
    }
}

