//! Network model: latency, loss, and partitions.
//!
//! The paper's claims are about message *counts* and *destinations*, so the
//! latency model only needs to be plausible, not cycle-accurate. We model a
//! 1989-vintage 10 Mbit/s Ethernet LAN per site plus long-distance links
//! between sites (section 5 of the paper mentions "considerations of
//! long-distance links").

use std::collections::BTreeSet;

use crate::det_rand::Rng;

use crate::ids::NodeId;
use crate::time::SimDuration;

/// Latency/loss parameters for one class of link.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkModel {
    /// Fixed per-message latency (propagation + protocol stack).
    pub base_latency: SimDuration,
    /// Additional latency per payload byte (transmission delay).
    pub per_byte: SimDuration,
    /// Uniform jitter added on top: `U[0, jitter]`.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
}

impl LinkModel {
    /// A 10 Mbit/s shared Ethernet: ~1 ms stack latency, 0.8 us/byte.
    pub fn lan() -> LinkModel {
        LinkModel {
            base_latency: SimDuration::from_micros(1_000),
            per_byte: SimDuration::from_micros(1),
            jitter: SimDuration::from_micros(400),
            drop_prob: 0.0,
        }
    }

    /// A long-distance (inter-site) link: ~30 ms latency, some loss.
    pub fn wan() -> LinkModel {
        LinkModel {
            base_latency: SimDuration::from_millis(30),
            per_byte: SimDuration::from_micros(2),
            jitter: SimDuration::from_millis(5),
            drop_prob: 0.001,
        }
    }

    /// A zero-latency, lossless link, useful for protocol unit tests where
    /// timing is irrelevant.
    pub fn ideal() -> LinkModel {
        LinkModel {
            base_latency: SimDuration::from_micros(1),
            per_byte: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
        }
    }

    /// Samples the one-way latency for a message of `bytes` payload bytes.
    pub fn sample_latency<R: Rng>(&self, bytes: usize, rng: &mut R) -> SimDuration {
        let jitter = if self.jitter == SimDuration::ZERO {
            0
        } else {
            rng.gen_range(0..=self.jitter.as_micros())
        };
        SimDuration(
            self.base_latency.as_micros() + self.per_byte.as_micros() * bytes as u64 + jitter,
        )
    }

    /// Samples whether this message is lost.
    pub fn sample_drop<R: Rng>(&self, rng: &mut R) -> bool {
        self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob.min(1.0))
    }
}

/// Full network configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Link model used between nodes on the same site.
    pub local: LinkModel,
    /// Link model used between nodes on different sites.
    pub long_distance: LinkModel,
    /// Latency for a process sending a message to itself (loopback).
    pub loopback: SimDuration,
    /// When `true` (the default), messages between the same ordered pair of
    /// processes are delivered in send order, modelling the TCP-like
    /// transport ISIS ran over. Jitter can otherwise reorder them.
    pub fifo: bool,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            local: LinkModel::lan(),
            long_distance: LinkModel::wan(),
            loopback: SimDuration::from_micros(10),
            fifo: true,
        }
    }
}

impl NetConfig {
    /// A deterministic, jitter-free, lossless network for protocol tests.
    pub fn ideal() -> NetConfig {
        NetConfig {
            local: LinkModel::ideal(),
            long_distance: LinkModel::ideal(),
            loopback: SimDuration::from_micros(1),
            fifo: true,
        }
    }

    /// The conservative-parallel lookahead of this network: a lower bound on
    /// the latency of any message between two *different* nodes. A worker
    /// shard that has executed everything up to time `T` cannot receive new
    /// work scheduled before `T + lookahead`, which is what makes windowed
    /// parallel execution safe. Loopback latency is deliberately excluded:
    /// self-sends and same-node sends never cross a shard boundary (shards
    /// partition whole nodes), so they cannot constrain the horizon.
    ///
    /// `sample_latency` always returns at least `base_latency` (jitter and
    /// the per-byte component only add), so the minimum of the two base
    /// latencies is a sound bound.
    pub fn lookahead(&self) -> SimDuration {
        self.local
            .base_latency
            .min(self.long_distance.base_latency)
    }
}

/// Dynamic connectivity state: which pairs of partitions can currently talk.
///
/// Partitions are expressed as a colouring of nodes: nodes with the same
/// colour can exchange messages, nodes with different colours cannot. This
/// represents the "network partitions" of section 5.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// Nodes explicitly placed in a non-default partition cell.
    /// Nodes absent from the map are in cell 0.
    cells: std::collections::BTreeMap<NodeId, u32>,
}

impl Partition {
    /// A fully connected network.
    pub fn connected() -> Partition {
        Partition::default()
    }

    /// Places `node` in partition `cell`. Cell 0 is the default cell that
    /// all unlisted nodes occupy.
    pub fn set_cell(&mut self, node: NodeId, cell: u32) {
        if cell == 0 {
            self.cells.remove(&node);
        } else {
            self.cells.insert(node, cell);
        }
    }

    /// Splits the network: nodes in `minority` form their own cell.
    pub fn split(minority: impl IntoIterator<Item = NodeId>) -> Partition {
        let mut p = Partition::default();
        for n in minority {
            p.set_cell(n, 1);
        }
        p
    }

    /// Splits the network into several cells at once: each listed group of
    /// nodes gets its own cell (1, 2, …); unlisted nodes stay in cell 0.
    /// A node named in several groups ends up in the last one — callers
    /// composing adversarial schedules should keep groups disjoint.
    pub fn split_many<I>(groups: I) -> Partition
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = NodeId>,
    {
        let mut p = Partition::default();
        for (i, group) in groups.into_iter().enumerate() {
            for n in group {
                p.set_cell(n, i as u32 + 1);
            }
        }
        p
    }

    /// Heals the partition, reconnecting everything.
    pub fn heal(&mut self) {
        self.cells.clear();
    }

    /// Returns the partition cell of `node`.
    pub fn cell(&self, node: NodeId) -> u32 {
        self.cells.get(&node).copied().unwrap_or(0)
    }

    /// Returns `true` when `a` and `b` can currently exchange messages.
    pub fn connected_pair(&self, a: NodeId, b: NodeId) -> bool {
        self.cell(a) == self.cell(b)
    }

    /// Returns `true` when no node is isolated from the default cell.
    pub fn is_healed(&self) -> bool {
        self.cells.is_empty()
    }

    /// Returns the set of distinct cells currently in use (including 0).
    pub fn cells_in_use(&self) -> BTreeSet<u32> {
        let mut s: BTreeSet<u32> = self.cells.values().copied().collect();
        s.insert(0);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_rand::DetRng;

    #[test]
    fn lan_latency_includes_size_component() {
        let mut rng = DetRng::seed_from_u64(1);
        let m = LinkModel {
            jitter: SimDuration::ZERO,
            ..LinkModel::lan()
        };
        let small = m.sample_latency(10, &mut rng);
        let large = m.sample_latency(1_000, &mut rng);
        assert!(large > small);
        assert_eq!(
            large.as_micros() - small.as_micros(),
            990 * m.per_byte.as_micros()
        );
    }

    #[test]
    fn ideal_link_is_deterministic() {
        let mut rng = DetRng::seed_from_u64(7);
        let m = LinkModel::ideal();
        let a = m.sample_latency(500, &mut rng);
        let b = m.sample_latency(500, &mut rng);
        assert_eq!(a, b);
        assert!(!m.sample_drop(&mut rng));
    }

    #[test]
    fn jitter_stays_within_bound() {
        let mut rng = DetRng::seed_from_u64(42);
        let m = LinkModel::lan();
        for _ in 0..200 {
            let l = m.sample_latency(0, &mut rng);
            assert!(l >= m.base_latency);
            assert!(l <= m.base_latency + m.jitter);
        }
    }

    #[test]
    fn drop_probability_is_roughly_honoured() {
        let mut rng = DetRng::seed_from_u64(3);
        let m = LinkModel {
            drop_prob: 0.5,
            ..LinkModel::lan()
        };
        let drops = (0..2_000).filter(|_| m.sample_drop(&mut rng)).count();
        assert!((800..1_200).contains(&drops), "drops={drops}");
    }

    #[test]
    fn lookahead_is_the_minimum_internode_base_latency() {
        assert_eq!(
            NetConfig::ideal().lookahead(),
            SimDuration::from_micros(1),
            "ideal: both link classes bottom out at 1us"
        );
        let lan = NetConfig::default();
        assert_eq!(
            lan.lookahead(),
            LinkModel::lan().base_latency,
            "default: the LAN link is the tighter bound"
        );
        // Loopback never participates: a sub-lookahead loopback is fine.
        assert!(lan.loopback < lan.lookahead());
    }

    #[test]
    fn sampled_latency_never_undercuts_lookahead() {
        let mut rng = DetRng::seed_from_u64(99);
        let cfg = NetConfig::default();
        for bytes in [0usize, 64, 4_096] {
            for _ in 0..100 {
                assert!(cfg.local.sample_latency(bytes, &mut rng) >= cfg.lookahead());
                assert!(cfg.long_distance.sample_latency(bytes, &mut rng) >= cfg.lookahead());
            }
        }
    }

    #[test]
    fn partition_splits_and_heals() {
        let mut p = Partition::split([NodeId(1), NodeId(2)]);
        assert!(!p.connected_pair(NodeId(0), NodeId(1)));
        assert!(p.connected_pair(NodeId(1), NodeId(2)));
        assert!(p.connected_pair(NodeId(0), NodeId(3)));
        assert_eq!(p.cells_in_use().len(), 2);
        p.heal();
        assert!(p.is_healed());
        assert!(p.connected_pair(NodeId(0), NodeId(1)));
    }

    #[test]
    fn split_many_gives_each_group_its_own_cell() {
        let p = Partition::split_many([vec![NodeId(1), NodeId(2)], vec![NodeId(3)]]);
        assert!(p.connected_pair(NodeId(1), NodeId(2)));
        assert!(!p.connected_pair(NodeId(1), NodeId(3)));
        assert!(!p.connected_pair(NodeId(0), NodeId(1)));
        assert!(!p.connected_pair(NodeId(0), NodeId(3)));
        assert!(p.connected_pair(NodeId(0), NodeId(4)));
        assert_eq!(p.cells_in_use().len(), 3);
        // The empty grouping is just a connected network.
        let empty: [Vec<NodeId>; 0] = [];
        assert!(Partition::split_many(empty).is_healed());
    }

    #[test]
    fn set_cell_zero_returns_node_to_default() {
        let mut p = Partition::connected();
        p.set_cell(NodeId(5), 3);
        assert!(!p.connected_pair(NodeId(5), NodeId(0)));
        p.set_cell(NodeId(5), 0);
        assert!(p.is_healed());
    }
}
