//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns a set of workstations ([`crate::ids::NodeId`]) hosting
//! processes, a pending-event queue ordered by simulated time, seeded RNGs,
//! and the global [`Stats`]. Everything is fully deterministic: two runs
//! with the same seed and the same sequence of harness calls produce
//! byte-identical statistics — *at any worker-shard count*. Determinism is
//! what lets the experiment harness make exact claims about message counts.
//!
//! Every per-process effect the outside world can see — RNG draws, event
//! sequence numbers, timer ids, wire handles — comes from *per-process*
//! state advanced in that process's own execution order. A process's
//! execution order is the same whether the run is sequential or sharded
//! across workers (see [`crate::par`]), so all derived bytes are
//! shard-count-invariant by construction. The event queue orders entries by
//! the total key `(time, class, seq, source)`: `class` 0 is reserved for
//! control events (crash/restart/partition) so they apply before same-time
//! traffic in both execution modes, `seq` is the per-source counter, and
//! `source` breaks the remaining ties.
//!
//! The hot paths — `route`, `step`, counter bumps — are allocation-free:
//! counters are interned ids, the per-callback action buffer is reused
//! across invocations, multicast shares one payload `Arc` across all
//! destinations, and the FIFO channel clock is a flat dense table.
//!
//! The send/deliver/timer surface lives in [`crate::transport`]: the sim is
//! the default [`Transport`] implementation, and the process-hosting runtime
//! (clock snapshot, RNG, stats, tracer, action buffer) is the shared
//! [`Endpoint`] that real backends reuse unchanged. Conservative parallel
//! execution of a single run lives in [`crate::par`] and is enabled with
//! `NOW_SIM_JOBS` (or [`Sim::set_jobs`]).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use now_trace::{EventKind as TraceKind, Tracer};

use crate::det_rand::{DetRng, SplitMix64};

use crate::ids::{NodeId, Pid, SiteId, TimerId};
use crate::net::{NetConfig, Partition};
use crate::par::ShardCtx;
use crate::stats::{ObservationLog, Stats};
use crate::time::{SimDuration, SimTime};
use crate::transport::{dispatch, Action, Ctx, Endpoint, Transport};

/// Bit 63 marks a wire id as a *handle* (resolved through `Sim::wire_map`)
/// rather than a raw trace seq. Handles are used whenever `jobs > 1`: they
/// are allocated from per-process counters, so they are identical no matter
/// how the run is sharded, while raw trace seqs are only assigned at global
/// merge time.
pub(crate) const WIRE_HANDLE: u64 = 1 << 63;

/// Behaviour of a simulated process.
///
/// All processes in one simulation share a message type `Msg`; layered
/// protocols embed their payloads in it. Callbacks receive a [`Ctx`] through
/// which every externally visible effect (sends, timers, observations) must
/// flow — this is what makes runs reproducible and measurable.
pub trait Process: Send + 'static {
    /// The message type exchanged between processes in this simulation.
    /// `Send + Sync` lets the parallel engine carry in-flight payloads
    /// across worker shards; deterministic protocol state needs neither
    /// interior mutability nor shared ownership, so the bounds are free.
    type Msg: Clone + std::fmt::Debug + Send + Sync + 'static;

    /// Invoked once when the process is spawned.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Invoked when a message is delivered.
    fn on_message(&mut self, from: Pid, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Invoked when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _id: TimerId, _kind: u32, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Estimated wire size in bytes of a message, for the latency model and
    /// byte counters. The default suits small control messages.
    fn wire_size(_msg: &Self::Msg) -> usize {
        64
    }
}

/// A delivery payload: either an owned message or a multicast envelope
/// shared between all destinations of one `multicast` call. `Arc` (not
/// `Rc`) so a payload can ride a cross-shard mailbox.
pub(crate) enum Payload<M> {
    One(M),
    Shared(Arc<M>),
}

impl<M: Clone> Payload<M> {
    /// Takes the message out, cloning only when other deliveries still hold
    /// the shared envelope (the last consumer — and every dropped copy —
    /// pays nothing).
    fn into_msg(self) -> M {
        match self {
            Payload::One(m) => m,
            Payload::Shared(rc) => Arc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()),
        }
    }
}

pub(crate) enum Event {
    /// `inc` pins the start to one incarnation: a restart→crash→restart
    /// chain must not double-start the latest life.
    Start { pid: Pid, inc: u32 },
    /// `wire` is the trace seq of the matching `NetSend` event (0 when the
    /// tracer was off at send time); it links the delivery back to its send.
    /// `payload` indexes the payload slab (`Sim::payloads`): keeping the
    /// message out of line keeps queue entries small, so heap sifts move a
    /// few words instead of a whole message. `inc` is the destination's
    /// incarnation at send time: a delivery addressed to a previous life of
    /// a restarted process is dropped as stale, never handed to the new one.
    Deliver {
        to: Pid,
        from: Pid,
        payload: u32,
        wire: u64,
        inc: u32,
    },
    /// `inc` is the owner's incarnation when the timer was armed; timers
    /// from a previous life never fire into a restarted process.
    Timer { pid: Pid, id: TimerId, kind: u32, inc: u32 },
    Crash(Pid),
    Restart(Pid),
    SetPartition(Partition),
}

/// The total event-ordering key: `(at, class, seq, src)`.
///
/// - `class` 0 = control events (crash/restart/partition), 1 = everything
///   else; controls sort before same-time traffic in every execution mode.
/// - `seq` is a *per-source* counter (each process slot owns one; harness
///   originated events draw from `Sim::ext_seq`), so it is identical at any
///   shard count.
/// - `src` (the originating pid, `u32::MAX` for the harness) breaks the
///   remaining ties between different sources.
pub(crate) type EventKey = (SimTime, u8, u64, u32);

pub(crate) struct Entry {
    pub(crate) at: SimTime,
    pub(crate) class: u8,
    pub(crate) seq: u64,
    pub(crate) src: u32,
    pub(crate) ev: Event,
}

impl Entry {
    pub(crate) fn key(&self) -> EventKey {
        (self.at, self.class, self.seq, self.src)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

pub(crate) struct Slot<P> {
    pub(crate) proc: P,
    pub(crate) node: NodeId,
    pub(crate) alive: bool,
    /// How many times this pid has been restarted (0 = first life). Bumped
    /// by [`Sim::restart`]; deliveries and timers are tagged with it so the
    /// engine can drop traffic addressed to a previous life.
    pub(crate) incarnation: u32,
    /// This process's private deterministic RNG stream, seeded from
    /// `(SimConfig::seed, pid)`. Latency/loss draws for *its* sends and
    /// `Ctx::rng` draws in *its* callbacks come from here, in its own
    /// execution order — which is shard-count-invariant.
    pub(crate) rng: DetRng,
    /// Per-source event sequence counter (the `seq` of queue entries this
    /// process originates). Persists across restarts.
    pub(crate) next_seq: u64,
    /// Per-process timer counter; allocated ids are prefixed with the pid
    /// (see `Ctx::timer_base`), so they are unique and shard-invariant.
    pub(crate) next_timer: u64,
    /// Per-process wire-handle counter (used when `jobs > 1` and tracing).
    pub(crate) next_wire: u32,
    /// Timers this process has armed and not yet fired or cancelled.
    /// Id-sorted (ids are allocated monotonically per process): arming is a
    /// tail push, lookups binary-search a few entries.
    pub(crate) armed: Vec<(TimerId, SimTime)>,
}

/// The per-process RNG seed: one SplitMix64 "split" of the run seed per
/// pid, the standard construction for independent child streams.
fn slot_seed(seed: u64, pid: Pid) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    SplitMix64::new(seed.wrapping_add(GOLDEN.wrapping_mul(u64::from(pid.0) + 1))).next_u64()
}

/// `NOW_SIM_JOBS`: worker-shard count for parallel execution inside one
/// run. Unset, 0, 1, or unparsable → 1 (sequential). Clamped to 64.
fn jobs_from_env() -> usize {
    std::env::var("NOW_SIM_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |j| j.clamp(1, 64))
}

/// Simulation-wide configuration.
#[derive(Clone, Debug)]
#[derive(Default)]
pub struct SimConfig {
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Network latency/loss model.
    pub net: NetConfig,
    /// Worker-shard count override; `None` defers to `NOW_SIM_JOBS`. Any
    /// value produces byte-identical runs (see [`Sim::set_jobs`]).
    pub jobs: Option<usize>,
}


impl SimConfig {
    /// Deterministic, near-zero-latency configuration for protocol tests.
    pub fn ideal(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            net: NetConfig::ideal(),
            jobs: None,
        }
    }

    /// A realistic single-site LAN configuration.
    pub fn lan(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            net: NetConfig::default(),
            jobs: None,
        }
    }

    /// Pins the worker-shard count, overriding `NOW_SIM_JOBS`. Useful for
    /// harnesses that compare parallel and sequential runs in one process.
    pub fn with_jobs(mut self, jobs: usize) -> SimConfig {
        self.jobs = Some(jobs.clamp(1, 64));
        self
    }
}

/// The simulator: a deterministic, single-threaded world of workstations.
/// It is the default [`Transport`] implementation: actions buffered by
/// callbacks are interpreted against its latency/loss model and pending
/// event queue.
pub struct Sim<P: Process> {
    pub(crate) cfg: SimConfig,
    /// Sequence counter for harness-originated events (spawn starts,
    /// injects, scheduled controls). Process-originated events use the
    /// originating slot's counter instead.
    pub(crate) ext_seq: u64,
    /// Wire-handle counter for harness injects (`jobs > 1` + tracing).
    pub(crate) ext_wire: u32,
    pub(crate) queue: BinaryHeap<Reverse<Entry>>,
    /// Pending delivery payloads, indexed by `Event::Deliver::payload`. A
    /// free-list slab: slots are recycled, so steady-state traffic allocates
    /// nothing and the queue entries stay a few words wide no matter how big
    /// `P::Msg` is.
    pub(crate) payloads: Vec<Option<Payload<P::Msg>>>,
    pub(crate) free_payloads: Vec<u32>,
    pub(crate) procs: Vec<Option<Slot<P>>>,
    pub(crate) node_sites: Vec<SiteId>,
    pub(crate) partition: Partition,
    /// The process-hosting runtime shared with real backends: clock
    /// snapshot, RNG, stats, observations, reusable action buffer, optional
    /// tracer. The sim is its single clock writer.
    pub(crate) ep: Endpoint<P::Msg>,
    /// Per ordered (src, dst) pair: latest scheduled arrival, used to keep
    /// channels FIFO when `NetConfig::fifo` is set. A flat dense table
    /// indexed `[src][dst]` (grown on demand; `SimTime::ZERO` = no pending
    /// constraint) — pid-pair keyed tree walks were a route() hot spot.
    pub(crate) channel_clock: Vec<Vec<SimTime>>,
    /// Factory for the fresh process state of a restarted pid, registered
    /// via [`Sim::set_respawn`]; required by [`Sim::restart`] and
    /// [`Sim::schedule_restart`] (but not [`Sim::restart_with`]).
    /// `Arc<dyn Fn>` (not `Box<dyn FnMut>`) so worker shards can restart
    /// processes during a parallel run.
    pub(crate) respawn: Option<Arc<dyn Fn(Pid) -> P + Send + Sync>>,
    /// Worker-shard count for parallel execution inside one run. 1 (the
    /// default) = the classic sequential engine. Values > 1 opt into
    /// per-shard stats tables and wire handles so that sequential stretches
    /// and parallel windows produce identical bytes.
    pub(crate) jobs: usize,
    /// Per-shard stats tables, present when `jobs > 1`. A process *always*
    /// bumps counters through its own shard's table (its interned
    /// `CounterId`s are only valid there); the tables are drained into the
    /// main `ep.stats` at synchronisation points, keyed by name.
    pub(crate) shard_stats: Vec<Stats>,
    /// Wire handle → global trace seq of the matching `NetSend`, used when
    /// `jobs > 1` and tracing. Registered when the send is recorded in the
    /// *merged* trace, consumed by the delivery/drop that terminates it.
    pub(crate) wire_map: BTreeMap<u64, u64>,
    /// Present only inside a worker shard of a parallel window (see
    /// [`crate::par`]): replicas of remote state plus the shard mailboxes.
    pub(crate) shard: Option<ShardCtx<P::Msg>>,
}

impl<P: Process> Sim<P> {
    /// Creates an empty world. The worker-shard count comes from
    /// `cfg.jobs` if set, else `NOW_SIM_JOBS` (default 1); see
    /// [`Sim::set_jobs`].
    pub fn new(cfg: SimConfig) -> Sim<P> {
        let ep = Endpoint::new(cfg.seed);
        let jobs = cfg.jobs.unwrap_or_else(jobs_from_env);
        Sim {
            cfg,
            ext_seq: 0,
            ext_wire: 0,
            queue: BinaryHeap::new(),
            procs: Vec::new(),
            node_sites: Vec::new(),
            partition: Partition::connected(),
            ep,
            payloads: Vec::new(),
            free_payloads: Vec::new(),
            channel_clock: Vec::new(),
            respawn: None,
            jobs,
            shard_stats: std::iter::repeat_with(Stats::default).take(jobs).collect(),
            wire_map: BTreeMap::new(),
            shard: None,
        }
    }

    /// Sets the worker-shard count for parallel execution inside one run
    /// (overriding `NOW_SIM_JOBS`). Must be called before the first spawn:
    /// processes cache interned counter ids in the stats table their shard
    /// owns, so the shard layout cannot change once processes exist.
    ///
    /// Any value produces byte-identical stats, traces, and observations;
    /// `jobs > 1` additionally enables parallel window execution when the
    /// workload is worth it (see `par_eligible`).
    ///
    /// # Panics
    ///
    /// Panics if processes have already been spawned, or `jobs` is 0.
    pub fn set_jobs(&mut self, jobs: usize) {
        assert!(jobs > 0, "jobs must be at least 1");
        assert!(
            self.procs.is_empty(),
            "set_jobs must be called before the first spawn"
        );
        self.jobs = jobs;
        self.shard_stats = std::iter::repeat_with(Stats::default).take(jobs).collect();
    }

    /// The configured worker-shard count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The shard that owns `node`: whole nodes are partitioned round-robin,
    /// so same-node (and loopback) traffic never crosses a shard boundary.
    pub(crate) fn shard_of_node(&self, node: NodeId) -> usize {
        node.0 as usize % self.jobs
    }

    /// Attaches a tracer (e.g. `Tracer::new().with_monitors(..)`), replacing
    /// and returning any existing one.
    pub fn set_tracer(&mut self, t: Tracer) -> Option<Tracer> {
        self.ep.set_tracer(t)
    }

    /// The attached tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.ep.tracer()
    }

    /// Mutable access to the attached tracer (for fault injection in tests).
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.ep.tracer_mut()
    }

    /// Detaches and returns the tracer, disabling tracing from here on.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.ep.take_tracer()
    }

    /// Records an engine-level trace event; no-op (returning 0) when off.
    fn trace(&mut self, pid: Pid, cause: Option<u64>, kind: TraceKind) -> u64 {
        self.ep.trace(pid, cause, kind)
    }

    /// Adds a workstation at `site` and returns its id.
    pub fn add_node(&mut self, site: SiteId) -> NodeId {
        let id = NodeId(self.node_sites.len() as u32);
        self.node_sites.push(site);
        id
    }

    /// Adds `n` workstations at site 0 and returns their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node(SiteId(0))).collect()
    }

    /// Spawns `proc` on `node`; its `on_start` runs at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn spawn(&mut self, node: NodeId, proc_: P) -> Pid {
        assert!(
            (node.0 as usize) < self.node_sites.len(),
            "spawn on unknown {node:?}"
        );
        let pid = Pid(self.procs.len() as u32);
        self.procs.push(Some(Slot {
            proc: proc_,
            node,
            alive: true,
            incarnation: 0,
            rng: DetRng::seed_from_u64(slot_seed(self.cfg.seed, pid)),
            next_seq: 0,
            next_timer: 0,
            next_wire: 0,
            armed: Vec::new(),
        }));
        self.ep.stats.ensure_proc(pid);
        if self.ep.tracing() {
            self.trace(pid, None, TraceKind::Spawn { node: node.0 });
        }
        let seq = self.slot_seq(pid);
        self.push(self.ep.now, 1, seq, pid.0, Event::Start { pid, inc: 0 });
        pid
    }

    pub(crate) fn push(&mut self, at: SimTime, class: u8, seq: u64, src: u32, ev: Event) {
        self.queue.push(Reverse(Entry { at, class, seq, src, ev }));
    }

    /// Draws the next per-source sequence number of `pid`'s slot.
    fn slot_seq(&mut self, pid: Pid) -> u64 {
        let s = self.procs[pid.0 as usize].as_mut().expect("unknown pid");
        let seq = s.next_seq;
        s.next_seq += 1;
        seq
    }

    /// Draws the next harness-originated sequence number.
    fn ext_seq(&mut self) -> u64 {
        let seq = self.ext_seq;
        self.ext_seq += 1;
        seq
    }

    /// Parks a delivery payload in the slab, reusing a free slot when one
    /// exists, and returns its index.
    pub(crate) fn store_payload(&mut self, payload: Payload<P::Msg>) -> u32 {
        match self.free_payloads.pop() {
            Some(i) => {
                self.payloads[i as usize] = Some(payload);
                i
            }
            None => {
                let i = self.payloads.len() as u32;
                self.payloads.push(Some(payload));
                i
            }
        }
    }

    /// Removes and returns the payload at `slot`, recycling the slot.
    pub(crate) fn take_payload(&mut self, slot: u32) -> Payload<P::Msg> {
        let p = self.payloads[slot as usize]
            .take()
            .expect("payload slot taken twice");
        self.free_payloads.push(slot);
        p
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ep.now
    }

    /// The process-hosting runtime (stats, observations, RNG, tracer).
    pub fn endpoint(&self) -> &Endpoint<P::Msg> {
        &self.ep
    }

    /// Mutable access to the process-hosting runtime.
    pub fn endpoint_mut(&mut self) -> &mut Endpoint<P::Msg> {
        &mut self.ep
    }

    /// Immutable view of the run statistics.
    pub fn stats(&self) -> &Stats {
        self.ep.stats()
    }

    /// Mutable access to statistics (to enable tracking or reset windows).
    pub fn stats_mut(&mut self) -> &mut Stats {
        self.ep.stats_mut()
    }

    /// The observation log.
    pub fn observations(&self) -> &ObservationLog {
        self.ep.observations()
    }

    /// Mutable observation log (for clearing between measurement windows).
    pub fn observations_mut(&mut self) -> &mut ObservationLog {
        self.ep.observations_mut()
    }

    /// Immutable access to a process's state, alive or crashed.
    ///
    /// # Panics
    ///
    /// Panics on an unknown pid.
    pub fn process(&self, pid: Pid) -> &P {
        &self.slot(pid).proc
    }

    /// Mutable access to a process's *state only* — effects are impossible
    /// without a [`Ctx`]; prefer [`Sim::invoke`] to drive protocol actions.
    pub fn process_mut(&mut self, pid: Pid) -> &mut P {
        &mut self.procs[pid.0 as usize]
            .as_mut()
            .expect("unknown pid")
            .proc
    }

    fn slot(&self, pid: Pid) -> &Slot<P> {
        self.procs[pid.0 as usize].as_ref().expect("unknown pid")
    }

    /// Whether `pid` is alive (spawned and not crashed or halted).
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs
            .get(pid.0 as usize)
            .and_then(Option::as_ref)
            .is_some_and(|s| s.alive)
    }

    /// The current incarnation of `pid`: 0 for the first life, bumped by
    /// every [`Sim::restart`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown pid.
    pub fn incarnation(&self, pid: Pid) -> u32 {
        self.slot(pid).incarnation
    }

    /// The node hosting `pid`.
    pub fn node_of(&self, pid: Pid) -> NodeId {
        self.slot(pid).node
    }

    /// The site of a node.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.node_sites[node.0 as usize]
    }

    /// All currently alive pids, in pid order.
    pub fn alive_pids(&self) -> Vec<Pid> {
        (0..self.procs.len() as u32)
            .map(Pid)
            .filter(|p| self.is_alive(*p))
            .collect()
    }

    /// Number of spawned processes (alive or not).
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// Harness randomness drawn from the same deterministic stream.
    pub fn rng_mut(&mut self) -> &mut DetRng {
        self.ep.rng_mut()
    }

    /// Marks `pid` dead and forgets its FIFO channel *row* (it never sends
    /// again). `purge_column` additionally clears every channel *into* it —
    /// crashes do this (the column rows may live on other shards, and crash
    /// application is a synchronisation point); halts don't (a halt happens
    /// mid-window on the owner's shard, and stale inbound clocks are
    /// harmless: anything addressed to a dead process is dropped at
    /// delivery time).
    pub(crate) fn kill(&mut self, pid: Pid, purge_column: bool) -> bool {
        let mut was_alive = false;
        if let Some(s) = self.procs[pid.0 as usize].as_mut() {
            was_alive = s.alive;
            s.alive = false;
        }
        if was_alive {
            let i = pid.0 as usize;
            if let Some(row) = self.channel_clock.get_mut(i) {
                *row = Vec::new();
            }
            if purge_column {
                self.purge_channel_column(pid);
            }
        }
        was_alive
    }

    /// Clears every FIFO clock entry *into* `pid`, so long churn runs don't
    /// accumulate dead channels. Safe because anything addressed to a dead
    /// process is dropped at delivery time.
    pub(crate) fn purge_channel_column(&mut self, pid: Pid) {
        let i = pid.0 as usize;
        for row in &mut self.channel_clock {
            if let Some(c) = row.get_mut(i) {
                *c = SimTime::ZERO;
            }
        }
    }

    /// Number of live FIFO channel-clock entries (test/diagnostic hook).
    pub fn live_channel_entries(&self) -> usize {
        self.channel_clock
            .iter()
            .map(|row| row.iter().filter(|c| **c != SimTime::ZERO).count())
            .sum()
    }

    /// Number of timers currently armed (set, not yet fired or cancelled).
    /// Zero after quiescence — the regression guard for the old leak where
    /// cancelled ids of already-fired timers accumulated forever.
    pub fn armed_timers(&self) -> usize {
        self.procs
            .iter()
            .flatten()
            .map(|s| s.armed.len())
            .sum()
    }

    /// Crashes `pid` immediately: it stops executing and every in-flight
    /// message or timer addressed to it is silently discarded.
    ///
    /// Crashing an already-dead pid is an explicit no-op (chaos schedules
    /// can double-fire a crash): no trace event, no state change.
    pub fn crash(&mut self, pid: Pid) {
        if self.kill(pid, true) && self.ep.tracing() {
            self.trace(pid, None, TraceKind::Crash);
        }
    }

    /// Registers the factory that builds the fresh process state of a
    /// restarted pid. Required before [`Sim::restart`] or
    /// [`Sim::schedule_restart`]; [`Sim::restart_with`] works without it.
    /// `Send + Sync` so worker shards can restart during a parallel run.
    pub fn set_respawn(&mut self, f: impl Fn(Pid) -> P + Send + Sync + 'static) {
        self.respawn = Some(Arc::new(f));
    }

    /// Restarts a crashed `pid` under a fresh incarnation number, with
    /// process state built by the registered respawn factory. The new life
    /// shares the pid but nothing else: messages and timers addressed to a
    /// previous incarnation are dropped as stale at delivery time (counted
    /// in `Stats::messages_stale_dropped` and traced as `StaleDrop`), so a
    /// restart can never resurrect zombie state.
    ///
    /// Returns the new incarnation number, or `None` (a no-op) if `pid` is
    /// still alive.
    ///
    /// # Panics
    ///
    /// Panics on an unknown pid or if no respawn factory is registered.
    pub fn restart(&mut self, pid: Pid) -> Option<u32> {
        if self.is_alive(pid) {
            return None;
        }
        let f = Arc::clone(
            self.respawn
                .as_ref()
                .expect("Sim::restart requires a respawn factory (Sim::set_respawn)"),
        );
        let fresh = f(pid);
        self.restart_with(pid, fresh)
    }

    /// [`Sim::restart`] with explicit fresh process state (no factory
    /// needed). No-op returning `None` if `pid` is alive.
    pub fn restart_with(&mut self, pid: Pid, proc_: P) -> Option<u32> {
        let slot = self.procs[pid.0 as usize].as_mut().expect("unknown pid");
        if slot.alive {
            return None;
        }
        slot.proc = proc_;
        slot.alive = true;
        slot.incarnation += 1;
        let inc = slot.incarnation;
        if self.ep.tracing() {
            self.trace(pid, None, TraceKind::Restart { incarnation: u64::from(inc) });
        }
        let seq = self.slot_seq(pid);
        self.push(self.ep.now, 1, seq, pid.0, Event::Start { pid, inc });
        Some(inc)
    }

    /// Schedules a restart of `pid` at absolute time `at` (via the respawn
    /// factory). A no-op at fire time if the pid is alive then.
    pub fn schedule_restart(&mut self, pid: Pid, at: SimTime) {
        assert!(at >= self.ep.now, "cannot schedule a restart in the past");
        let seq = self.ext_seq();
        self.push(at, 0, seq, Pid::EXTERNAL.0, Event::Restart(pid));
    }

    /// Crashes every process hosted on `node` (a workstation power failure).
    pub fn crash_node(&mut self, node: NodeId) {
        let mut died = Vec::new();
        for (i, s) in self.procs.iter_mut().enumerate() {
            if let Some(s) = s {
                if s.node == node && s.alive {
                    s.alive = false;
                    died.push(Pid(i as u32));
                }
            }
        }
        for pid in died {
            self.channel_clock
                .get_mut(pid.0 as usize)
                .map(std::mem::take);
            self.purge_channel_column(pid);
            if self.ep.tracing() {
                self.trace(pid, None, TraceKind::Crash);
            }
        }
    }

    /// Schedules a crash of `pid` at absolute time `at`.
    pub fn schedule_crash(&mut self, pid: Pid, at: SimTime) {
        assert!(at >= self.ep.now, "cannot schedule a crash in the past");
        let seq = self.ext_seq();
        self.push(at, 0, seq, Pid::EXTERNAL.0, Event::Crash(pid));
    }

    /// Replaces the network partition state immediately.
    pub fn set_partition(&mut self, p: Partition) {
        self.partition = p;
    }

    /// Heals any active partition. Healing an already-connected network is
    /// an explicit no-op (chaos schedules can double-fire `Heal`); returns
    /// whether a partition was actually cleared.
    pub fn heal(&mut self) -> bool {
        if self.partition.is_healed() {
            return false;
        }
        self.partition = Partition::connected();
        true
    }

    /// Schedules a partition change at absolute time `at`.
    pub fn schedule_partition(&mut self, at: SimTime, p: Partition) {
        assert!(at >= self.ep.now, "cannot schedule a partition in the past");
        let seq = self.ext_seq();
        self.push(at, 0, seq, Pid::EXTERNAL.0, Event::SetPartition(p));
    }

    /// Reads the current partition state.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Invokes `f` on a live process with a full effect context, as though
    /// an external client had prodded it. This is how the harness drives
    /// protocol entry points (join a group, start a broadcast, ...).
    ///
    /// Returns `None` without calling `f` if the process is not alive.
    pub fn invoke<R>(
        &mut self,
        pid: Pid,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        self.invoke_caused(pid, None, f)
    }

    /// [`Sim::invoke`] with an explicit causal link: `cause` is the trace
    /// seq of the delivery/timer event that triggered this callback.
    fn invoke_caused<R>(
        &mut self,
        pid: Pid,
        cause: Option<u64>,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        if !self.is_alive(pid) {
            return None;
        }
        // Callbacks are never nested (dispatch cannot re-enter invoke), so
        // the endpoint-owned scratch buffer round-trips through the Ctx and
        // `give_back`, and steady-state invocations allocate nothing.
        let (r, mut actions) = {
            // Split borrows: the process slot stays in place (no move out and
            // back) while the endpoint borrows its disjoint fields. The Ctx
            // is built here rather than via `Endpoint::run` because the
            // engine wires in *per-slot* determinism state: the process's
            // own RNG stream, its own timer counter under a pid-derived id
            // prefix, and — when sharded — its shard's stats table.
            let Sim { procs, ep, shard_stats, jobs, shard, .. } = self;
            let slot = procs[pid.0 as usize].as_mut().expect("unknown pid");
            let mut actions = std::mem::take(&mut ep.scratch);
            // Stats routing: with one shard, the main table. With several,
            // a process always bumps through its *shard's* table (interned
            // counter ids are only valid there); inside a worker, `ep.stats`
            // *is* that shard table already.
            let stats: &mut Stats = if *jobs > 1 && shard.is_none() {
                &mut shard_stats[slot.node.0 as usize % *jobs]
            } else {
                &mut ep.stats
            };
            let r = {
                let mut ctx = Ctx {
                    now: ep.now,
                    me: pid,
                    incarnation: slot.incarnation,
                    rng: &mut slot.rng,
                    stats,
                    obs: &mut ep.obs,
                    next_timer: &mut slot.next_timer,
                    timer_base: (u64::from(pid.0) + 1) << 32,
                    actions: &mut actions,
                    tracer: ep.tracer.as_mut(),
                    cause,
                };
                f(&mut slot.proc, &mut ctx)
            };
            (r, actions)
        };
        dispatch(self, pid, &mut actions, cause);
        self.ep.give_back(actions);
        // Sequential stretches of a sharded run flush eagerly: harnesses
        // read counters between invocations (e.g. progress loops), so the
        // main table must stay current. O(registered names) — per-proc and
        // message counters never land in shard tables outside a worker.
        if self.jobs > 1 && self.shard.is_none() {
            let Sim { ep, shard_stats, .. } = self;
            for t in shard_stats.iter_mut() {
                t.drain_into(&mut ep.stats);
            }
        }
        Some(r)
    }

    fn route(&mut self, from: Pid, to: Pid, msg: P::Msg, cause: Option<u64>) {
        let bytes = P::wire_size(&msg);
        self.route_payload(from, to, Payload::One(msg), bytes, cause);
    }

    /// The hosting node of `pid`, whether it is a local slot or (inside a
    /// worker) a remote replica. `None` for the external pseudo-pid and
    /// unknown pids.
    fn node_for(&self, pid: Pid) -> Option<NodeId> {
        match self.procs.get(pid.0 as usize) {
            Some(Some(s)) => Some(s.node),
            Some(None) => self
                .shard
                .as_ref()
                .and_then(|sc| sc.pid_nodes.get(pid.0 as usize).copied()),
            None => None,
        }
    }

    /// The current incarnation of `pid`, local slot or remote replica.
    fn inc_for(&self, pid: Pid) -> u32 {
        match self.procs.get(pid.0 as usize) {
            Some(Some(s)) => s.incarnation,
            Some(None) => self
                .shard
                .as_ref()
                .map_or(0, |sc| sc.remote_incs[pid.0 as usize]),
            None => 0,
        }
    }

    /// Resolves a wire id for terminal trace emission on the *main* sim: a
    /// handle (bit 63 set) maps — exactly once — to the global seq of its
    /// `NetSend`; a raw id passes through. Workers keep handles verbatim;
    /// the window merge resolves them (see [`crate::par`]).
    pub(crate) fn resolve_wire(&mut self, wire: u64) -> u64 {
        if wire & WIRE_HANDLE == 0 {
            return wire;
        }
        self.wire_map.remove(&wire).unwrap_or(0)
    }

    fn route_payload(
        &mut self,
        from: Pid,
        to: Pid,
        payload: Payload<P::Msg>,
        bytes: usize,
        cause: Option<u64>,
    ) {
        self.ep.stats.record_send(from, to, bytes);
        // With one shard the NetSend's seq *is* the wire id carried by the
        // delivery/drop; with several the seq is only window-local, so the
        // wire id becomes a per-sender handle (see `WIRE_HANDLE`).
        let send_seq = match self.ep.tracing() {
            true => self.trace(from, cause, TraceKind::NetSend { to: to.0, bytes: bytes as u64 }),
            false => 0,
        };
        if (to.0 as usize) >= self.procs.len() {
            // Message to a pid that does not exist (e.g. stale address).
            // The drop references the send directly — same trace record,
            // no handle needed even when sharded.
            self.ep.stats.record_drop(to);
            if send_seq > 0 {
                self.trace(from, Some(send_seq), TraceKind::NetDrop { to: to.0, send: send_seq });
            }
            return;
        }
        let src_node = self.slot(from).node;
        let dst_node = self.node_for(to).expect("destination has no node");
        // Borrow the link model in place (no per-message clone); the drop
        // decision and latency draw complete before any &mut self call.
        // Draws come from the *sender's* slot RNG: they happen in the
        // sender's execution order, which is shard-count-invariant.
        let latency = if from == to || src_node == dst_node {
            Some(self.cfg.net.loopback)
        } else {
            let same_site =
                self.node_sites[src_node.0 as usize] == self.node_sites[dst_node.0 as usize];
            let Sim { cfg, procs, .. } = self;
            let model = if same_site {
                &cfg.net.local
            } else {
                &cfg.net.long_distance
            };
            let rng = &mut procs[from.0 as usize].as_mut().expect("unknown pid").rng;
            if model.sample_drop(rng) {
                None
            } else {
                Some(model.sample_latency(bytes, rng))
            }
        };
        let Some(latency) = latency else {
            self.ep.stats.record_drop(to);
            if send_seq > 0 {
                self.trace(from, Some(send_seq), TraceKind::NetDrop { to: to.0, send: send_seq });
            }
            return;
        };
        let mut arrival = self.ep.now + latency;
        if self.cfg.net.fifo {
            let (fi, ti) = (from.0 as usize, to.0 as usize);
            if self.channel_clock.len() <= fi {
                self.channel_clock.resize_with(fi + 1, Vec::new);
            }
            let row = &mut self.channel_clock[fi];
            if row.len() <= ti {
                row.resize(ti + 1, SimTime::ZERO);
            }
            let clock = &mut row[ti];
            if arrival <= *clock {
                arrival = *clock + SimDuration::from_micros(1);
            }
            *clock = arrival;
        }
        // The wire id is allocated only now that the delivery is definitely
        // going onto the queue (allocating earlier would leak map entries on
        // the drop paths above).
        let wire = if send_seq == 0 {
            0
        } else if self.jobs == 1 {
            send_seq
        } else {
            let slot = self.procs[from.0 as usize].as_mut().expect("unknown pid");
            let h = WIRE_HANDLE | ((u64::from(from.0) + 1) << 32) | u64::from(slot.next_wire);
            slot.next_wire += 1;
            match &mut self.shard {
                // Worker: the local NetSend seq is registered for the merge.
                Some(sc) => sc.wire_regs.push((h, send_seq)),
                // Sequential stretch: the seq is already global.
                None => {
                    self.wire_map.insert(h, send_seq);
                }
            }
            h
        };
        let inc = self.inc_for(to);
        let seq = self.slot_seq(from);
        match &self.shard {
            Some(sc) if self.shard_of_node(dst_node) != sc.id => {
                // Cross-shard: the delivery is mailed to the owning worker
                // and enqueued there under the *same* key it would have had
                // locally.
                let dst = self.shard_of_node(dst_node);
                self.post_mail(
                    dst,
                    crate::par::Mail {
                        at: arrival,
                        seq,
                        src: from.0,
                        to,
                        payload,
                        wire,
                        inc,
                    },
                );
            }
            _ => {
                let payload = self.store_payload(payload);
                self.push(arrival, 1, seq, from.0, Event::Deliver { to, from, payload, wire, inc });
            }
        }
    }

    /// Executes one popped entry (the clock is already advanced). Returns
    /// `false` for entries that were filtered out (dropped deliveries,
    /// cancelled timers) so [`Sim::step`] can keep its historical contract
    /// of executing "one real event" per call.
    fn execute(&mut self, entry: Entry) -> bool {
        match entry.ev {
            Event::Start { pid, inc } => {
                if self.is_alive(pid) && self.slot(pid).incarnation == inc {
                    self.invoke(pid, |p, ctx| p.on_start(ctx));
                }
            }
            Event::Deliver { to, from, payload, wire, inc } => {
                let payload = self.take_payload(payload);
                // Terminal trace emission resolves a wire handle to its
                // global NetSend seq on the main sim; a worker keeps the
                // handle verbatim for the window merge to resolve.
                let in_shard = self.shard.is_some();
                if !self.is_alive(to) {
                    self.ep.stats.record_drop(to);
                    if wire > 0 {
                        let send = if in_shard { wire } else { self.resolve_wire(wire) };
                        self.trace(from, Some(send), TraceKind::NetDrop { to: to.0, send });
                    }
                    return false;
                }
                if self.slot(to).incarnation != inc {
                    // Addressed to a previous life of a restarted
                    // process: dropping (counted, traced) is what keeps
                    // a restart from resurrecting zombie state.
                    self.ep.stats.record_stale_drop(to);
                    if wire > 0 {
                        let send = if in_shard { wire } else { self.resolve_wire(wire) };
                        self.trace(
                            from,
                            Some(send),
                            TraceKind::StaleDrop {
                                to: to.0,
                                incarnation: u64::from(inc),
                                send,
                            },
                        );
                    }
                    return false;
                }
                // Partition is evaluated at delivery time: messages in
                // flight when the partition forms are lost, like frames
                // on a cut cable.
                if let Some(sn) = self.node_for(from) {
                    let dn = self.slot(to).node;
                    if !self.partition.connected_pair(sn, dn) {
                        self.ep.stats.record_drop(to);
                        if wire > 0 {
                            let send = if in_shard { wire } else { self.resolve_wire(wire) };
                            self.trace(from, Some(send), TraceKind::NetDrop { to: to.0, send });
                        }
                        return false;
                    }
                }
                self.ep.stats.record_delivery(to);
                let cause = match self.ep.tracing() {
                    true => {
                        let send = if in_shard { wire } else { self.resolve_wire(wire) };
                        let link = (send > 0).then_some(send);
                        Some(self.trace(
                            to,
                            link,
                            TraceKind::NetDeliver { from: from.0, send },
                        ))
                    }
                    false => None,
                };
                self.invoke_caused(to, cause, |p, ctx| p.on_message(from, payload.into_msg(), ctx));
            }
            Event::Timer { pid, id, kind, inc } => {
                // A fired timer leaves its owner's `armed` immediately,
                // whether or not the owner still runs; cancelled or stale
                // ids are simply absent. The incarnation gate keeps a
                // previous life's timers from firing into a restarted
                // process.
                {
                    let slot = self.procs[pid.0 as usize].as_mut().expect("unknown pid");
                    match slot.armed.binary_search_by_key(&id, |&(t, _)| t) {
                        Ok(i) => {
                            slot.armed.remove(i);
                        }
                        Err(_) => return false,
                    }
                }
                if self.is_alive(pid) && self.slot(pid).incarnation == inc {
                    let cause = match self.ep.tracing() {
                        true => Some(self.trace(
                            pid,
                            None,
                            TraceKind::TimerFire { kind: u64::from(kind) },
                        )),
                        false => None,
                    };
                    self.invoke_caused(pid, cause, |p, ctx| p.on_timer(id, kind, ctx));
                }
            }
            Event::Crash(pid) => self.crash(pid),
            Event::Restart(pid) => {
                self.restart(pid);
            }
            Event::SetPartition(p) => self.partition = p,
        }
        true
    }

    /// Executes the next pending event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(Reverse(entry)) = self.queue.pop() else {
                return false;
            };
            debug_assert!(entry.at >= self.ep.now, "event queue went backwards");
            self.ep.now = entry.at;
            if self.execute(entry) {
                return true;
            }
        }
    }

    /// Executes the next pending event if it lies strictly before horizon
    /// `h`, returning its ordering key. Returns `None` (leaving the queue
    /// untouched) otherwise — the worker-side primitive of a conservative
    /// parallel window; the key labels the trace/observation chunk the
    /// event produced for the global merge.
    pub(crate) fn step_bounded(&mut self, h: SimTime) -> Option<EventKey> {
        match self.queue.peek() {
            Some(Reverse(e)) if e.at < h => {}
            _ => return None,
        }
        let Some(Reverse(entry)) = self.queue.pop() else {
            unreachable!("peek said non-empty");
        };
        debug_assert!(entry.at >= self.ep.now, "event queue went backwards");
        self.ep.now = entry.at;
        let key = entry.key();
        self.execute(entry);
        Some(key)
    }

    /// Posts a cross-shard delivery to the worker owning shard `dst`.
    /// Channels are bounded; on a full inbox we drain our *own* mailbox
    /// (every mailed arrival is at or beyond the current horizon, so early
    /// ingestion is safe) and yield, which makes the send loop free of
    /// send/send deadlocks between mutually flooding shards.
    fn post_mail(&mut self, dst: usize, mail: crate::par::Mail<P::Msg>) {
        let mut mail = mail;
        loop {
            let sc = self.shard.as_mut().expect("post_mail outside a worker");
            match sc.mail_out[dst].try_send(mail) {
                Ok(()) => {
                    sc.sent_cum[dst] += 1;
                    return;
                }
                Err(std::sync::mpsc::TrySendError::Full(m)) => {
                    mail = m;
                    self.ingest_pending_mail();
                    std::thread::yield_now();
                }
                // Receiver gone: the run is unwinding; drop the mail.
                Err(std::sync::mpsc::TrySendError::Disconnected(_)) => return,
            }
        }
    }

    /// Ingests every mail item currently waiting in the inbox, without
    /// blocking.
    fn ingest_pending_mail(&mut self) {
        loop {
            let m = match self.shard.as_mut() {
                Some(sc) => match sc.mail_in.try_recv() {
                    Ok(m) => m,
                    Err(_) => return,
                },
                None => return,
            };
            self.ingest_mail(m);
        }
    }

    /// Blocks until `expect` mail items (cumulative over the whole run)
    /// have been ingested. The coordinator tells each worker exactly how
    /// much mail is bound for it before a window executes, so no arrival
    /// can be missed.
    pub(crate) fn drain_mail_to(&mut self, expect: u64) {
        while self.shard.as_ref().is_some_and(|sc| sc.recv_cum < expect) {
            let m = match self.shard.as_mut() {
                Some(sc) => match sc.mail_in.recv() {
                    Ok(m) => m,
                    // Sender gone: the run is unwinding.
                    Err(_) => return,
                },
                None => return,
            };
            self.ingest_mail(m);
        }
        // Opportunistically ingest anything else already queued.
        self.ingest_pending_mail();
    }

    /// Enqueues one mailed delivery under the key it would have had locally.
    fn ingest_mail(&mut self, m: crate::par::Mail<P::Msg>) {
        if let Some(sc) = self.shard.as_mut() {
            sc.recv_cum += 1;
        }
        let payload = self.store_payload(m.payload);
        self.push(
            m.at,
            1,
            m.seq,
            m.src,
            Event::Deliver { to: m.to, from: Pid(m.src), payload, wire: m.wire, inc: m.inc },
        );
    }

    /// Whether the next run call should fan out across worker shards.
    /// A pure performance heuristic — it cannot change any produced byte —
    /// so it is free to demand a workload that actually amortises the
    /// per-window barrier: enough lookahead for windows to carry real work,
    /// enough processes to fill every shard, and a queue that is not about
    /// to drain.
    fn par_eligible(&self) -> bool {
        self.jobs > 1
            && self.shard.is_none()
            && self.cfg.net.lookahead() >= SimDuration::from_micros(100)
            && self.procs.len() >= 2 * self.jobs
            && self.queue.len() >= 64
    }

    /// Runs until the clock reaches `t` (events at exactly `t` included) or
    /// the queue drains.
    pub fn run_until(&mut self, t: SimTime) {
        if self.par_eligible() {
            crate::par::run_parallel(self, t, false);
        } else {
            while let Some(Reverse(e)) = self.queue.peek() {
                if e.at > t {
                    break;
                }
                self.step();
            }
        }
        if self.ep.now < t {
            self.ep.now = t;
        }
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.ep.now + d;
        self.run_until(t);
    }

    /// Runs until no events remain or the clock would pass `limit`.
    /// Returns `true` if the system quiesced (queue drained) within `limit`.
    ///
    /// Note: protocols with periodic timers (heartbeats) never quiesce; use
    /// [`Sim::run_until`] for those.
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> bool {
        if self.par_eligible() {
            return crate::par::run_parallel(self, limit, true);
        }
        while let Some(Reverse(e)) = self.queue.peek() {
            if e.at > limit {
                return false;
            }
            self.step();
        }
        true
    }

    /// Injects a message from the harness pseudo-client to `to`, delivered
    /// after the loopback latency.
    pub fn inject(&mut self, to: Pid, msg: P::Msg) {
        let bytes = P::wire_size(&msg);
        self.ep.stats.record_send(Pid::EXTERNAL, to, bytes);
        let send_seq = match self.ep.tracing() {
            true => self.trace(
                Pid::EXTERNAL,
                None,
                TraceKind::NetSend { to: to.0, bytes: bytes as u64 },
            ),
            false => 0,
        };
        let wire = if send_seq == 0 {
            0
        } else if self.jobs == 1 {
            send_seq
        } else {
            // Injects happen on the main sim only, so the seq is global.
            let h = WIRE_HANDLE | u64::from(self.ext_wire);
            self.ext_wire += 1;
            self.wire_map.insert(h, send_seq);
            h
        };
        let payload = self.store_payload(Payload::One(msg));
        let inc = self
            .procs
            .get(to.0 as usize)
            .and_then(Option::as_ref)
            .map_or(0, |s| s.incarnation);
        let seq = self.ext_seq();
        self.push(
            self.ep.now + self.cfg.net.loopback,
            1,
            seq,
            Pid::EXTERNAL.0,
            Event::Deliver {
                to,
                from: Pid::EXTERNAL,
                payload,
                wire,
                inc,
            },
        );
    }

    /// Number of events currently pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

/// The simulator is the default transport: actions become queue events
/// routed through the latency/loss model, on simulated time.
impl<P: Process> Transport<P::Msg> for Sim<P> {
    fn clock(&self) -> SimTime {
        self.ep.now
    }

    fn apply(&mut self, from: Pid, action: Action<P::Msg>, cause: Option<u64>) {
        match action {
            Action::Send { to, msg } => self.route(from, to, msg, cause),
            Action::Multicast { dsts, msg } => {
                // Size once, share the payload; each destination still
                // counts as one message, exactly as before.
                let bytes = P::wire_size(&msg);
                let shared = Arc::new(msg);
                for to in dsts {
                    self.route_payload(
                        from,
                        to,
                        Payload::Shared(Arc::clone(&shared)),
                        bytes,
                        cause,
                    );
                }
            }
            Action::SetTimer { id, kind, at } => {
                let inc;
                {
                    let slot = self.procs[from.0 as usize].as_mut().expect("unknown pid");
                    // Per-process ids are handed out monotonically, so this
                    // is a push.
                    debug_assert!(slot.armed.last().is_none_or(|&(last, _)| last < id));
                    slot.armed.push((id, at));
                    inc = slot.incarnation;
                }
                let seq = self.slot_seq(from);
                self.push(at, 1, seq, from.0, Event::Timer { pid: from, id, kind, inc });
            }
            Action::CancelTimer(id) => {
                // The id names its owner: the high bits are (pid + 1) << 32
                // (see `Ctx::timer_base`), so the lookup goes straight to
                // the owning slot's armed list.
                let owner = ((id.0 >> 32) as u32).wrapping_sub(1);
                if let Some(Some(slot)) = self.procs.get_mut(owner as usize) {
                    if let Ok(i) = slot.armed.binary_search_by_key(&id, |&(t, _)| t) {
                        slot.armed.remove(i);
                    }
                }
            }
            Action::Halt => {
                if self.kill(from, false) && self.ep.tracing() {
                    self.trace(from, cause, TraceKind::Halt);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy process: replies "pong" to "ping", counts deliveries, and can
    /// fire timers.
    #[derive(Default)]
    struct Echo {
        got: Vec<(Pid, String)>,
        timer_fired: Vec<u32>,
    }

    impl Process for Echo {
        type Msg = String;

        fn on_message(&mut self, from: Pid, msg: String, ctx: &mut Ctx<'_, String>) {
            if msg == "ping" {
                ctx.send(from, "pong".into());
            }
            self.got.push((from, msg));
        }

        fn on_timer(&mut self, _id: TimerId, kind: u32, _ctx: &mut Ctx<'_, String>) {
            self.timer_fired.push(kind);
        }
    }

    fn two_procs() -> (Sim<Echo>, Pid, Pid) {
        let mut sim = Sim::new(SimConfig::ideal(1));
        let n = sim.add_nodes(2);
        let a = sim.spawn(n[0], Echo::default());
        let b = sim.spawn(n[1], Echo::default());
        (sim, a, b)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, a, b) = two_procs();
        sim.invoke(a, |_, ctx| ctx.send(b, "ping".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert_eq!(sim.process(b).got, vec![(a, "ping".to_string())]);
        assert_eq!(sim.process(a).got, vec![(b, "pong".to_string())]);
        assert_eq!(sim.stats().messages_sent, 2);
        assert_eq!(sim.stats().messages_delivered, 2);
    }

    #[test]
    fn crashed_process_receives_nothing() {
        let (mut sim, a, b) = two_procs();
        sim.crash(b);
        sim.invoke(a, |_, ctx| ctx.send(b, "ping".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert!(sim.process(b).got.is_empty());
        assert_eq!(sim.stats().messages_dropped, 1);
        assert!(!sim.is_alive(b));
        assert!(sim.is_alive(a));
    }

    #[test]
    fn scheduled_crash_takes_effect_at_time() {
        let (mut sim, a, b) = two_procs();
        sim.schedule_crash(b, SimTime(500));
        // Sent at t=0, arrives at t=1 (ideal link): delivered.
        sim.invoke(a, |_, ctx| ctx.send(b, "early".into()));
        sim.run_until(SimTime(400));
        assert_eq!(sim.process(b).got.len(), 1);
        sim.run_until(SimTime(600));
        sim.invoke(a, |_, ctx| ctx.send(b, "late".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert_eq!(sim.process(b).got.len(), 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let (mut sim, a, _) = two_procs();
        let cancelled = sim
            .invoke(a, |_, ctx| {
                ctx.set_timer(SimDuration::from_millis(5), 1);
                let t2 = ctx.set_timer(SimDuration::from_millis(1), 2);
                ctx.set_timer(SimDuration::from_millis(3), 3);
                t2
            })
            .unwrap();
        sim.invoke(a, |_, ctx| ctx.cancel_timer(cancelled));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert_eq!(sim.process(a).timer_fired, vec![3, 1]);
    }

    #[test]
    fn armed_timer_set_is_empty_after_quiescence() {
        // Regression: the old `cancelled: BTreeSet<TimerId>` kept ids of
        // timers cancelled after firing (or belonging to crashed procs)
        // forever. The armed map must drain completely.
        let (mut sim, a, b) = two_procs();
        let fired = sim
            .invoke(a, |_, ctx| ctx.set_timer(SimDuration::from_micros(10), 1))
            .unwrap();
        sim.run_to_quiescence(SimTime(1_000_000));
        // Cancelling an already-fired timer must not resurrect any state.
        sim.invoke(a, |_, ctx| ctx.cancel_timer(fired));
        // A timer on a process that crashes before the deadline still leaves
        // the map when its queue entry pops.
        sim.invoke(b, |_, ctx| ctx.set_timer(SimDuration::from_millis(1), 2));
        sim.crash(b);
        assert_eq!(sim.armed_timers(), 1);
        sim.run_to_quiescence(SimTime(10_000_000));
        assert_eq!(sim.armed_timers(), 0, "armed timer map must drain");
        // And a cancel-before-fire round trip also leaves nothing behind.
        let t = sim
            .invoke(a, |_, ctx| ctx.set_timer(SimDuration::from_millis(5), 3))
            .unwrap();
        sim.invoke(a, |_, ctx| ctx.cancel_timer(t));
        assert_eq!(sim.armed_timers(), 0);
        sim.run_to_quiescence(SimTime(20_000_000));
        assert_eq!(sim.armed_timers(), 0);
        assert_eq!(sim.process(a).timer_fired, vec![1]);
    }

    #[test]
    fn channel_clock_is_pruned_for_dead_processes() {
        let mut sim: Sim<Echo> = Sim::new(SimConfig::lan(13));
        let nodes = sim.add_nodes(3);
        let a = sim.spawn(nodes[0], Echo::default());
        let b = sim.spawn(nodes[1], Echo::default());
        let c = sim.spawn(nodes[2], Echo::default());
        sim.invoke(a, |_, ctx| {
            ctx.send(b, "x".into());
            ctx.send(c, "x".into());
        });
        sim.invoke(b, |_, ctx| ctx.send(a, "x".into()));
        assert!(sim.live_channel_entries() >= 3);
        sim.crash(b);
        // Every entry with b as source or destination is gone; a→c remains.
        assert_eq!(sim.live_channel_entries(), 1);
        // Halting a sender also clears its row.
        sim.invoke(a, |_, ctx| ctx.halt());
        assert_eq!(sim.live_channel_entries(), 0);
    }

    #[test]
    fn partition_blocks_delivery_and_heals() {
        let (mut sim, a, b) = two_procs();
        sim.set_partition(Partition::split([sim.node_of(b)]));
        sim.invoke(a, |_, ctx| ctx.send(b, "blocked".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert!(sim.process(b).got.is_empty());
        assert_eq!(sim.stats().messages_dropped, 1);

        sim.set_partition(Partition::connected());
        sim.invoke(a, |_, ctx| ctx.send(b, "ok".into()));
        sim.run_to_quiescence(SimTime(2_000_000));
        assert_eq!(sim.process(b).got.len(), 1);
    }

    #[test]
    fn scheduled_partition_fires() {
        let (mut sim, a, b) = two_procs();
        sim.schedule_partition(SimTime(100), Partition::split([sim.node_of(b)]));
        sim.run_until(SimTime(200));
        sim.invoke(a, |_, ctx| ctx.send(b, "x".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert!(sim.process(b).got.is_empty());
    }

    #[test]
    fn multicast_counts_one_message_per_destination() {
        let mut sim: Sim<Echo> = Sim::new(SimConfig::ideal(3));
        let nodes = sim.add_nodes(5);
        let pids: Vec<Pid> = nodes
            .iter()
            .map(|n| sim.spawn(*n, Echo::default()))
            .collect();
        let (first, rest) = pids.split_first().unwrap();
        let rest = rest.to_vec();
        sim.invoke(*first, |_, ctx| ctx.multicast(rest, "hello".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert_eq!(sim.stats().proc(pids[0]).sent, 4);
        for p in &pids[1..] {
            assert_eq!(sim.process(*p).got.len(), 1);
        }
    }

    #[test]
    fn multicast_shared_payload_reaches_every_destination_intact() {
        // The shared-envelope fast path must hand every receiver the full
        // message, including when some deliveries are dropped (dead dest).
        let mut sim: Sim<Echo> = Sim::new(SimConfig::lan(17));
        let nodes = sim.add_nodes(4);
        let pids: Vec<Pid> = nodes
            .iter()
            .map(|n| sim.spawn(*n, Echo::default()))
            .collect();
        sim.crash(pids[2]);
        let dsts = vec![pids[1], pids[2], pids[3]];
        sim.invoke(pids[0], |_, ctx| ctx.multicast(dsts, "payload".into()));
        sim.run_to_quiescence(SimTime(10_000_000));
        assert_eq!(sim.process(pids[1]).got, vec![(pids[0], "payload".to_string())]);
        assert_eq!(sim.process(pids[3]).got, vec![(pids[0], "payload".to_string())]);
        assert_eq!(sim.stats().messages_sent, 3);
        assert_eq!(sim.stats().messages_dropped, 1);
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let run = |seed| {
            let mut sim: Sim<Echo> = Sim::new(SimConfig::lan(seed));
            let nodes = sim.add_nodes(4);
            let pids: Vec<Pid> = nodes
                .iter()
                .map(|n| sim.spawn(*n, Echo::default()))
                .collect();
            for i in 0..20u32 {
                let from = pids[(i % 4) as usize];
                let to = pids[((i + 1) % 4) as usize];
                sim.invoke(from, |_, ctx| ctx.send(to, "ping".into()));
            }
            sim.run_to_quiescence(SimTime(10_000_000));
            (sim.stats().messages_sent, sim.now())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn invoke_on_dead_process_returns_none() {
        let (mut sim, a, _) = two_procs();
        sim.crash(a);
        assert!(sim.invoke(a, |_, _| ()).is_none());
    }

    #[test]
    fn inject_delivers_from_external() {
        let (mut sim, a, _) = two_procs();
        sim.inject(a, "hi".into());
        sim.run_to_quiescence(SimTime(1_000_000));
        assert_eq!(sim.process(a).got, vec![(Pid::EXTERNAL, "hi".to_string())]);
    }

    #[test]
    fn halt_stops_a_process_silently() {
        let (mut sim, a, b) = two_procs();
        sim.invoke(a, |_, ctx| ctx.halt());
        assert!(!sim.is_alive(a));
        sim.invoke(b, |_, ctx| ctx.send(a, "x".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert!(sim.process(a).got.is_empty());
    }

    #[test]
    fn crash_node_kills_all_hosted_processes() {
        let mut sim: Sim<Echo> = Sim::new(SimConfig::ideal(5));
        let n0 = sim.add_node(SiteId(0));
        let n1 = sim.add_node(SiteId(0));
        let a = sim.spawn(n0, Echo::default());
        let b = sim.spawn(n0, Echo::default());
        let c = sim.spawn(n1, Echo::default());
        sim.crash_node(n0);
        assert!(!sim.is_alive(a));
        assert!(!sim.is_alive(b));
        assert!(sim.is_alive(c));
        assert_eq!(sim.alive_pids(), vec![c]);
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim: Sim<Echo> = Sim::new(SimConfig::ideal(0));
        sim.run_until(SimTime(12_345));
        assert_eq!(sim.now(), SimTime(12_345));
    }

    #[test]
    fn long_distance_latency_exceeds_lan() {
        let mut sim: Sim<Echo> = Sim::new(SimConfig::lan(9));
        let n0 = sim.add_node(SiteId(0));
        let n1 = sim.add_node(SiteId(0));
        let n2 = sim.add_node(SiteId(1));
        let a = sim.spawn(n0, Echo::default());
        let b = sim.spawn(n1, Echo::default());
        let c = sim.spawn(n2, Echo::default());
        sim.invoke(a, |_, ctx| {
            ctx.send(b, "lan".into());
            ctx.send(c, "wan".into());
        });
        sim.run_until(SimTime(10_000));
        assert_eq!(sim.process(b).got.len(), 1, "LAN message arrives fast");
        assert_eq!(sim.process(c).got.len(), 0, "WAN message still in flight");
        sim.run_until(SimTime(100_000));
        assert_eq!(sim.process(c).got.len(), 1);
    }

    #[test]
    fn fifo_channels_preserve_send_order_despite_jitter() {
        let mut sim: Sim<Echo> = Sim::new(SimConfig::lan(11));
        let nodes = sim.add_nodes(2);
        let a = sim.spawn(nodes[0], Echo::default());
        let b = sim.spawn(nodes[1], Echo::default());
        sim.invoke(a, |_, ctx| {
            for i in 0..50 {
                ctx.send(b, format!("{i}"));
            }
        });
        sim.run_to_quiescence(SimTime(60_000_000));
        let got: Vec<String> = sim.process(b).got.iter().map(|(_, m)| m.clone()).collect();
        let want: Vec<String> = (0..50).map(|i| format!("{i}")).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fifo_holds_within_a_multicast_burst() {
        // Repeated multicasts to the same destinations must stay ordered
        // per channel even though payloads ride a shared envelope.
        let mut sim: Sim<Echo> = Sim::new(SimConfig::lan(19));
        let nodes = sim.add_nodes(3);
        let a = sim.spawn(nodes[0], Echo::default());
        let b = sim.spawn(nodes[1], Echo::default());
        let c = sim.spawn(nodes[2], Echo::default());
        sim.invoke(a, |_, ctx| {
            for i in 0..20 {
                ctx.multicast([b, c], format!("{i}"));
            }
        });
        sim.run_to_quiescence(SimTime(60_000_000));
        let want: Vec<String> = (0..20).map(|i| format!("{i}")).collect();
        for p in [b, c] {
            let got: Vec<String> = sim.process(p).got.iter().map(|(_, m)| m.clone()).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn send_to_unknown_pid_is_counted_as_drop() {
        let (mut sim, a, _) = two_procs();
        sim.invoke(a, |_, ctx| ctx.send(Pid(999), "void".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert_eq!(sim.stats().messages_dropped, 1);
    }

    #[test]
    fn tracer_links_deliveries_back_to_sends() {
        use now_trace::EventKind;

        let (mut sim, a, b) = two_procs();
        sim.set_tracer(Tracer::new().retain_all());
        sim.invoke(a, |_, ctx| ctx.send(b, "ping".into()));
        sim.run_to_quiescence(SimTime(1_000_000));

        let tr = sim.take_tracer().expect("tracer attached");
        let events = tr.events();
        // ping: NET_SEND at a, NET_DELIVER at b; pong: NET_SEND at b
        // *caused by* that delivery, NET_DELIVER back at a.
        let send = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::NetSend { .. }) && e.pid == a.0)
            .expect("ping send traced");
        let deliver = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::NetDeliver { send: s, .. } if s == send.seq))
            .expect("ping delivery traced");
        assert_eq!(deliver.pid, b.0);
        assert_eq!(deliver.cause, Some(send.seq));
        let pong = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::NetSend { .. }) && e.pid == b.0)
            .expect("pong send traced");
        assert_eq!(
            pong.cause,
            Some(deliver.seq),
            "reply send must be caused by the delivery that triggered it"
        );
    }

    #[test]
    fn restart_revives_under_a_fresh_incarnation_with_fresh_state() {
        let (mut sim, a, b) = two_procs();
        sim.set_respawn(|_| Echo::default());
        sim.invoke(a, |_, ctx| ctx.send(b, "ping".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert_eq!(sim.process(b).got.len(), 1);

        sim.crash(b);
        assert_eq!(sim.restart(b), Some(1));
        assert!(sim.is_alive(b));
        assert_eq!(sim.incarnation(b), 1);
        assert!(sim.process(b).got.is_empty(), "restart installs fresh state");

        // The new life sends and receives normally.
        sim.invoke(a, |_, ctx| ctx.send(b, "ping".into()));
        sim.run_to_quiescence(SimTime(2_000_000));
        assert_eq!(sim.process(b).got.len(), 1);

        // A second crash+restart bumps again.
        sim.crash(b);
        assert_eq!(sim.restart(b), Some(2));
        assert_eq!(sim.incarnation(b), 2);
    }

    #[test]
    fn restart_of_a_live_process_is_a_noop() {
        let (mut sim, _, b) = two_procs();
        sim.set_respawn(|_| Echo::default());
        assert_eq!(sim.restart(b), None);
        assert_eq!(sim.incarnation(b), 0);
    }

    #[test]
    fn double_crash_is_a_noop() {
        let (mut sim, _, b) = two_procs();
        sim.set_tracer(Tracer::new().retain_all());
        sim.crash(b);
        sim.crash(b); // chaos schedules can double-fire; must not panic
        assert!(!sim.is_alive(b));
        let tr = sim.take_tracer().expect("tracer");
        let crashes = tr
            .events()
            .iter()
            .filter(|e| matches!(e.kind, now_trace::EventKind::Crash))
            .count();
        assert_eq!(crashes, 1, "the second crash traces nothing");
    }

    #[test]
    fn in_flight_messages_to_a_previous_incarnation_are_stale_dropped() {
        let (mut sim, a, b) = two_procs();
        sim.set_tracer(Tracer::new().retain_all());
        // The ping is in flight (arrives at t=1 on the ideal link) when b
        // crashes and restarts: it is addressed to incarnation 0 and must
        // not reach incarnation 1.
        sim.invoke(a, |_, ctx| ctx.send(b, "ping".into()));
        sim.crash(b);
        sim.restart_with(b, Echo::default());
        sim.run_to_quiescence(SimTime(1_000_000));
        assert!(sim.process(b).got.is_empty(), "stale delivery must not revive");
        assert_eq!(sim.stats().messages_stale_dropped, 1);
        assert_eq!(sim.stats().messages_dropped, 1, "stale drops count as drops");
        let tr = sim.take_tracer().expect("tracer");
        assert!(
            tr.events()
                .iter()
                .any(|e| matches!(e.kind, now_trace::EventKind::StaleDrop { to, .. } if to == b.0)),
            "the stale drop is traced"
        );
    }

    #[test]
    fn timers_of_a_previous_incarnation_do_not_fire() {
        let (mut sim, _, b) = two_procs();
        sim.invoke(b, |_, ctx| ctx.set_timer(SimDuration::from_millis(1), 7));
        sim.crash(b);
        sim.restart_with(b, Echo::default());
        sim.run_to_quiescence(SimTime(10_000_000));
        assert!(
            sim.process(b).timer_fired.is_empty(),
            "the old life's timer must not fire in the new life"
        );
        assert_eq!(sim.armed_timers(), 0, "the stale timer entry still drains");
    }

    #[test]
    fn scheduled_restart_fires_at_time_via_the_factory() {
        let (mut sim, a, b) = two_procs();
        sim.set_respawn(|_| Echo::default());
        sim.crash(b);
        sim.schedule_restart(b, SimTime(500));
        sim.run_until(SimTime(400));
        assert!(!sim.is_alive(b));
        sim.run_until(SimTime(600));
        assert!(sim.is_alive(b));
        assert_eq!(sim.incarnation(b), 1);
        // Delivery to the new life works.
        sim.invoke(a, |_, ctx| ctx.send(b, "hello".into()));
        sim.run_to_quiescence(SimTime(1_000_000));
        assert_eq!(sim.process(b).got.len(), 1);
    }

    #[test]
    fn scheduled_restart_of_a_live_pid_is_a_noop_at_fire_time() {
        let (mut sim, _, b) = two_procs();
        sim.set_respawn(|_| Echo::default());
        sim.schedule_restart(b, SimTime(500));
        sim.run_until(SimTime(1_000));
        assert!(sim.is_alive(b));
        assert_eq!(sim.incarnation(b), 0, "no bump when the pid never died");
    }

    #[test]
    fn restart_traces_the_new_incarnation() {
        let (mut sim, _, b) = two_procs();
        sim.set_tracer(Tracer::new().retain_all());
        sim.crash(b);
        sim.restart_with(b, Echo::default());
        let tr = sim.take_tracer().expect("tracer");
        assert!(tr.events().iter().any(|e| {
            matches!(e.kind, now_trace::EventKind::Restart { incarnation: 1 }) && e.pid == b.0
        }));
    }

    #[test]
    fn heal_is_a_noop_when_already_connected() {
        let (mut sim, _, b) = two_procs();
        assert!(!sim.heal(), "healing a healed network is a no-op");
        sim.set_partition(Partition::split([sim.node_of(b)]));
        assert!(sim.heal(), "an active partition is actually cleared");
        assert!(!sim.heal(), "and the second heal is a no-op again");
    }

    #[test]
    fn tracing_on_and_off_produce_identical_stats() {
        let run = |trace: bool| {
            let mut sim: Sim<Echo> = Sim::new(SimConfig::lan(7));
            if trace {
                sim.set_tracer(Tracer::new().retain_all());
            }
            let nodes = sim.add_nodes(3);
            let pids: Vec<Pid> = nodes
                .iter()
                .map(|n| sim.spawn(*n, Echo::default()))
                .collect();
            for i in 0..30u32 {
                let from = pids[(i % 3) as usize];
                let to = pids[((i + 1) % 3) as usize];
                sim.invoke(from, |_, ctx| ctx.send(to, "ping".into()));
            }
            sim.run_to_quiescence(SimTime(10_000_000));
            (
                sim.stats().messages_sent,
                sim.stats().messages_delivered,
                sim.stats().bytes_sent,
                sim.now(),
            )
        };
        assert_eq!(run(false), run(true), "tracing must not perturb the run");
    }
}
