//! The pluggable transport surface of the engine.
//!
//! Every externally visible effect of a process callback — sends,
//! multicasts, timers, halts — is buffered as an [`Action`] and applied by
//! a [`Transport`] after the callback returns. The deterministic simulator
//! ([`crate::engine::Sim`]) is the default implementation; a real backend
//! (the `now-net` daemon) implements the same trait over sockets and real
//! timers. Protocol crates are transport-agnostic: they only ever see a
//! [`Ctx`], which buffers actions without knowing who will interpret them.
//!
//! The split is three pieces:
//! - [`Action`] — the effect vocabulary (what a callback may ask for),
//! - [`Endpoint`] — the backend-shared process-hosting runtime: the clock
//!   snapshot, the seeded RNG, stats, observations, the timer-id allocator,
//!   the reusable action buffer, and the optional tracer. Both backends
//!   drive callbacks through [`Endpoint::run`], so trace/stat emission is
//!   identical in simulation and on a real network.
//! - [`Transport`] — the backend contract: interpret one action. The
//!   engine routes into its event queue; the daemon encodes frames onto
//!   sockets and arms wall-clock timers.
//!
//! Determinism note: nothing here reads a wall clock or spawns a thread;
//! an `Endpoint` is exactly as deterministic as the `now` values its owner
//! feeds it. The simulator feeds simulated time and stays byte-identical;
//! the real backend feeds elapsed real time and deliberately gives that
//! guarantee up (see DESIGN.md, "Transport architecture").

use now_trace::{EventKind as TraceKind, Tracer};

use crate::det_rand::DetRng;
use crate::ids::{Pid, TimerId};
use crate::stats::{CounterId, Observation, ObservationLog, SeriesId, Stats};
use crate::time::{SimDuration, SimTime};

/// One buffered effect emitted by a process callback through [`Ctx`].
///
/// Actions are interpreted by the owning [`Transport`] after the callback
/// returns, so a callback always observes a consistent snapshot of the
/// world regardless of backend.
pub enum Action<M> {
    /// Send `msg` to `to`.
    Send {
        /// Destination process.
        to: Pid,
        /// The message.
        msg: M,
    },
    /// One payload, many destinations. The sim shares the message via a
    /// single `Arc` instead of deep-cloning per destination (`Arc`, not
    /// `Rc`, so in-flight envelopes can cross worker shards under
    /// `NOW_SIM_JOBS`); a real backend encodes the payload once per
    /// remote peer.
    Multicast {
        /// Destinations, in send order.
        dsts: Vec<Pid>,
        /// The shared message.
        msg: M,
    },
    /// Arm timer `id` (allocated by the endpoint) to fire at `at`.
    SetTimer {
        /// The pre-allocated timer handle.
        id: TimerId,
        /// Caller-chosen discriminator passed back to `on_timer`.
        kind: u32,
        /// Absolute deadline on the owning transport's clock.
        at: SimTime,
    },
    /// Disarm a timer; unknown or fired ids are a no-op.
    CancelTimer(TimerId),
    /// The process stops silently.
    Halt,
}

/// The engine-side contract a backend must provide to host processes:
/// a clock and an interpreter for buffered [`Action`]s.
///
/// [`crate::engine::Sim`] implements this over its deterministic event
/// queue; `now-net`'s daemon implements it over unix/TCP sockets and
/// wall-clock timers. Protocol crates never call this directly — they go
/// through [`Ctx`] — so they compile unchanged against either backend.
pub trait Transport<M> {
    /// The current instant on this transport's clock (simulated time in
    /// the engine, elapsed real microseconds in the daemon).
    fn clock(&self) -> SimTime;

    /// Interprets one action emitted by the process hosted at `from`.
    /// `cause` is the trace seq of the delivery/timer that triggered the
    /// emitting callback (None for harness-driven invocations).
    fn apply(&mut self, from: Pid, action: Action<M>, cause: Option<u64>);
}

/// Drains `actions` through the transport, preserving emission order.
/// Both backends funnel every callback's effects through here, so the
/// interpretation order is the buffering order on any transport.
pub fn dispatch<M>(
    t: &mut impl Transport<M>,
    from: Pid,
    actions: &mut Vec<Action<M>>,
    cause: Option<u64>,
) {
    for a in actions.drain(..) {
        t.apply(from, a, cause);
    }
}

/// The backend-shared process-hosting runtime.
///
/// Owns everything a [`Ctx`] borrows: the clock snapshot, the seeded RNG,
/// statistics, the observation log, the timer-id allocator, the reusable
/// action buffer, and the optional tracer. A backend embeds one `Endpoint`
/// and drives every process callback through [`Endpoint::run`], which is
/// what makes stat counters and trace events mean the same thing in a
/// simulation and on a real network.
pub struct Endpoint<M> {
    pub(crate) now: SimTime,
    pub(crate) rng: DetRng,
    pub(crate) stats: Stats,
    pub(crate) obs: ObservationLog,
    pub(crate) next_timer: u64,
    pub(crate) scratch: Vec<Action<M>>,
    pub(crate) tracer: Option<Tracer>,
}

impl<M> Endpoint<M> {
    /// A fresh endpoint at time zero with a seeded RNG. The tracer is
    /// taken from the environment (`NOW_MONITORS` / `NOW_TRACE`), exactly
    /// as the simulator always did.
    pub fn new(seed: u64) -> Endpoint<M> {
        Endpoint {
            now: SimTime::ZERO,
            rng: DetRng::seed_from_u64(seed),
            stats: Stats::default(),
            obs: ObservationLog::default(),
            next_timer: 0,
            scratch: Vec::new(),
            tracer: Tracer::from_env(),
        }
    }

    /// The clock snapshot handed to the next callback.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock snapshot. The owner (sim or daemon) is the
    /// single writer; `Endpoint` never moves time on its own.
    pub fn set_now(&mut self, t: SimTime) {
        self.now = t;
    }

    /// The deterministic RNG stream.
    pub fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Immutable statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics (reset windows, per-proc tracking).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The observation log.
    pub fn observations(&self) -> &ObservationLog {
        &self.obs
    }

    /// Mutable observation log.
    pub fn observations_mut(&mut self) -> &mut ObservationLog {
        &mut self.obs
    }

    /// Attaches a tracer, replacing and returning any existing one.
    pub fn set_tracer(&mut self, t: Tracer) -> Option<Tracer> {
        self.tracer.replace(t)
    }

    /// The attached tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Mutable access to the attached tracer.
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_mut()
    }

    /// Detaches and returns the tracer.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Whether tracing is on (used to skip event construction when off).
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Records a backend-level trace event stamped with the current clock;
    /// no-op returning 0 when tracing is off.
    pub fn trace(&mut self, pid: Pid, cause: Option<u64>, kind: TraceKind) -> u64 {
        match self.tracer.as_mut() {
            Some(tr) => tr.record(self.now.as_micros(), pid.0, cause, kind),
            None => 0,
        }
    }

    /// Runs `f` under a [`Ctx`] for the process `me`, buffering its effects
    /// into the endpoint-owned scratch buffer. Returns `f`'s result and the
    /// filled buffer; interpret it with [`dispatch`] and hand it back via
    /// [`Endpoint::give_back`] so steady-state callbacks never allocate.
    ///
    /// `incarnation` is the hosted process's current life number (0 for the
    /// first life; the sim bumps it on every restart, real backends that
    /// never restart in place pass 0). It is exposed to protocol layers via
    /// [`Ctx::incarnation`] so a recovering process can tell a rejoin from
    /// a first join.
    pub fn run<R>(
        &mut self,
        me: Pid,
        incarnation: u32,
        cause: Option<u64>,
        f: impl FnOnce(&mut Ctx<'_, M>) -> R,
    ) -> (R, Vec<Action<M>>) {
        let mut actions = std::mem::take(&mut self.scratch);
        let r = {
            let Endpoint { now, rng, stats, obs, next_timer, tracer, .. } = self;
            let mut ctx = Ctx {
                now: *now,
                me,
                incarnation,
                rng,
                stats,
                obs,
                next_timer,
                timer_base: 0,
                actions: &mut actions,
                tracer: tracer.as_mut(),
                cause,
            };
            f(&mut ctx)
        };
        (r, actions)
    }

    /// Returns the scratch buffer after dispatch, cleared for reuse.
    pub fn give_back(&mut self, mut buf: Vec<Action<M>>) {
        buf.clear();
        self.scratch = buf;
    }
}

/// Effect context passed to every process callback.
///
/// Effects are buffered and applied by the owning transport after the
/// callback returns, so a callback observes a consistent snapshot of the
/// world. The action buffer is owned by the [`Endpoint`] and reused across
/// callbacks, so buffering an effect does not allocate in steady state.
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) me: Pid,
    pub(crate) incarnation: u32,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) stats: &'a mut Stats,
    pub(crate) obs: &'a mut ObservationLog,
    pub(crate) next_timer: &'a mut u64,
    /// High bits OR-ed into every allocated [`TimerId`]. The daemon path
    /// passes 0 (one global counter); the parallel-capable engine passes a
    /// pid-derived prefix with a *per-process* counter so timer ids are
    /// identical no matter which shard — or how many shards — allocated
    /// them.
    pub(crate) timer_base: u64,
    pub(crate) actions: &'a mut Vec<Action<M>>,
    pub(crate) tracer: Option<&'a mut Tracer>,
    /// Trace seq of the event (delivery, timer) that triggered this
    /// callback; threaded as the `cause` of everything it records.
    pub(crate) cause: Option<u64>,
}

impl<'a, M> Ctx<'a, M> {
    /// The current time on the hosting transport's clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The pid of the process being called.
    pub fn me(&self) -> Pid {
        self.me
    }

    /// This process's incarnation number: 0 in its first life, bumped on
    /// every restart. A recovering process (incarnation > 0) uses this to
    /// tell a rejoin from a first join.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Sends `msg` to `to`. Delivery is asynchronous and may fail if the
    /// network drops the message or `to` crashes first.
    pub fn send(&mut self, to: Pid, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends `msg` to every pid in `dsts` (a convenience multicast; each
    /// destination counts as one message, exactly as the paper counts them).
    /// The payload is shared across destinations rather than cloned per
    /// destination; a receiver only pays a clone when it is not the last
    /// holder of the shared envelope.
    pub fn multicast(&mut self, dsts: impl IntoIterator<Item = Pid>, msg: M) {
        let dsts: Vec<Pid> = dsts.into_iter().collect();
        if dsts.is_empty() {
            return;
        }
        self.actions.push(Action::Multicast { dsts, msg });
    }

    /// Arms a timer that fires after `delay` with the caller-chosen `kind`
    /// discriminator. Returns a handle usable with [`Ctx::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, kind: u32) -> TimerId {
        let id = TimerId(self.timer_base | *self.next_timer);
        *self.next_timer += 1;
        self.actions.push(Action::SetTimer {
            id,
            kind,
            at: self.now + delay,
        });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }

    /// Halts the calling process (a voluntary, silent stop — used to model a
    /// process leaving the system without protocol-level goodbye).
    pub fn halt(&mut self) {
        self.actions.push(Action::Halt);
    }

    /// Deterministic randomness for protocol-level choices.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Emits a labelled observation for the harness. Labels are static so
    /// emission never allocates.
    pub fn observe(&mut self, label: &'static str, value: f64) {
        self.obs.push(Observation {
            at: self.now,
            by: self.me,
            label,
            value,
        });
    }

    /// Registers (or looks up) a named counter, returning a dense handle.
    /// Hot paths resolve the id once and bump through [`Ctx::bump_id`].
    pub fn counter_id(&mut self, name: &'static str) -> CounterId {
        self.stats.counter_id(name)
    }

    /// Registers (or looks up) a named series, returning a dense handle.
    pub fn series_id(&mut self, name: &'static str) -> SeriesId {
        self.stats.series_id(name)
    }

    /// Adds one to an interned counter — a single array index.
    #[inline]
    pub fn bump_id(&mut self, id: CounterId) {
        self.stats.bump_id(id);
    }

    /// Adds `n` to an interned counter — a single array index.
    #[inline]
    pub fn bump_id_by(&mut self, id: CounterId, n: u64) {
        self.stats.bump_id_by(id, n);
    }

    /// Records a sample in an interned series — a single array index.
    #[inline]
    pub fn sample_id(&mut self, id: SeriesId, v: f64) {
        self.stats.sample_id(id, v);
    }

    /// Adds one to a named global counter (interned on first use).
    pub fn bump(&mut self, name: &'static str) {
        self.stats.bump(name);
    }

    /// Records a sample in a named global series (interned on first use).
    pub fn sample(&mut self, name: &'static str, v: f64) {
        self.stats.sample(name, v);
    }

    /// Records a duration sample (milliseconds) in a named global series.
    pub fn sample_duration(&mut self, name: &'static str, d: SimDuration) {
        self.stats.sample_duration(name, d);
    }

    /// Whether a tracer is attached. Protocol layers may use this to skip
    /// building expensive event payloads when tracing is off.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Records a trace event, lazily built by `f` only when tracing is on.
    /// The event is stamped with the current time, this pid, and the causal
    /// link to the delivery/timer that triggered this callback. Returns the
    /// event's seq (0 when tracing is off).
    pub fn trace_with(&mut self, f: impl FnOnce() -> now_trace::EventKind) -> u64 {
        match self.tracer.as_deref_mut() {
            Some(tr) => tr.record(self.now.as_micros(), self.me.0, self.cause, f()),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy transport that records applied actions; the trait is small
    /// enough that backends outside the engine stay this simple.
    struct Recorder {
        now: SimTime,
        applied: Vec<(Pid, String)>,
    }

    impl Transport<String> for Recorder {
        fn clock(&self) -> SimTime {
            self.now
        }

        fn apply(&mut self, from: Pid, action: Action<String>, _cause: Option<u64>) {
            let what = match action {
                Action::Send { to, msg } => format!("send {to} {msg}"),
                Action::Multicast { dsts, msg } => format!("mcast x{} {msg}", dsts.len()),
                Action::SetTimer { id, kind, .. } => format!("timer {id:?} k{kind}"),
                Action::CancelTimer(id) => format!("cancel {id:?}"),
                Action::Halt => "halt".into(),
            };
            self.applied.push((from, what));
        }
    }

    #[test]
    fn endpoint_runs_callbacks_and_dispatch_preserves_order() {
        let mut ep: Endpoint<String> = Endpoint::new(9);
        ep.set_now(SimTime(50));
        let me = Pid(3);
        let (got, mut actions) = ep.run(me, 0, None, |ctx| {
            assert_eq!(ctx.me(), me);
            assert_eq!(ctx.now(), SimTime(50));
            ctx.send(Pid(4), "a".into());
            let t = ctx.set_timer(SimDuration::from_millis(1), 7);
            ctx.multicast([Pid(5), Pid(6)], "b".into());
            ctx.cancel_timer(t);
            ctx.halt();
            42
        });
        assert_eq!(got, 42);
        let mut rec = Recorder { now: SimTime(50), applied: Vec::new() };
        dispatch(&mut rec, me, &mut actions, None);
        ep.give_back(actions);
        let kinds: Vec<&str> = rec
            .applied
            .iter()
            .map(|(_, w)| w.split(' ').next().expect("non-empty"))
            .collect();
        assert_eq!(kinds, vec!["send", "timer", "mcast", "cancel", "halt"]);
        assert!(rec.applied.iter().all(|(p, _)| *p == me));
    }

    #[test]
    fn endpoint_scratch_buffer_is_reused() {
        let mut ep: Endpoint<u32> = Endpoint::new(1);
        let (_, mut a) = ep.run(Pid(0), 0, None, |ctx| {
            for i in 0..16 {
                ctx.send(Pid(1), i);
            }
        });
        let cap = a.capacity();
        a.clear();
        ep.give_back(a);
        let (_, b) = ep.run(Pid(0), 0, None, |ctx| ctx.send(Pid(1), 1));
        assert_eq!(b.capacity(), cap, "scratch buffer must round-trip");
        ep.give_back(b);
    }

    #[test]
    fn endpoint_timer_ids_are_monotonic_across_callbacks() {
        let mut ep: Endpoint<u32> = Endpoint::new(1);
        let (t1, a) = ep.run(Pid(0), 0, None, |ctx| ctx.set_timer(SimDuration::ZERO, 0));
        ep.give_back(a);
        let (t2, b) = ep.run(Pid(7), 0, None, |ctx| ctx.set_timer(SimDuration::ZERO, 0));
        ep.give_back(b);
        assert!(t2 > t1, "timer ids must never repeat across processes");
    }

    #[test]
    fn timer_base_prefixes_allocated_ids() {
        // The engine allocates timer ids from per-process counters under a
        // pid-derived base; the ids must interleave the two without
        // colliding and without disturbing the counters' low bits.
        let mut rng = DetRng::seed_from_u64(0);
        let mut stats = Stats::default();
        let mut obs = ObservationLog::default();
        let mut ctr: u64 = 5;
        let mut actions: Vec<Action<u32>> = Vec::new();
        let base = (3u64 + 1) << 32;
        let mut ctx = Ctx {
            now: SimTime::ZERO,
            me: Pid(3),
            incarnation: 0,
            rng: &mut rng,
            stats: &mut stats,
            obs: &mut obs,
            next_timer: &mut ctr,
            timer_base: base,
            actions: &mut actions,
            tracer: None,
            cause: None,
        };
        let a = ctx.set_timer(SimDuration::ZERO, 0);
        let b = ctx.set_timer(SimDuration::ZERO, 0);
        assert_eq!(a, TimerId(base | 5));
        assert_eq!(b, TimerId(base | 6));
        assert_eq!(ctr, 7);
    }

    #[test]
    fn endpoint_stats_and_observations_flow_through_ctx() {
        let mut ep: Endpoint<u32> = Endpoint::new(2);
        ep.set_now(SimTime(7));
        let (_, a) = ep.run(Pid(1), 0, None, |ctx| {
            ctx.bump("x.count");
            ctx.observe("y", 1.5);
        });
        ep.give_back(a);
        assert_eq!(ep.stats().counter("x.count"), 1);
        assert_eq!(ep.observations().all().len(), 1);
    }
}
