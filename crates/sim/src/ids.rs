//! Identifiers for the entities of a simulated network of workstations.

use std::fmt;

/// Identifies a workstation (a node) in the simulated network.
///
/// Nodes are the unit of network connectivity and of site placement; a node
/// may host many processes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a site — a LAN segment such as "the trading floor" or "the
/// machine room". Links between sites are long-distance links with higher
/// latency, as discussed in section 5 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteId(pub u16);

/// Identifies a process in the simulation.
///
/// A `Pid` is never reused: a crashed process that "recovers" rejoins the
/// system as a new process with a new `Pid`, matching the ISIS model in which
/// recovery is indistinguishable from a fresh join.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl Pid {
    /// A pseudo-process representing input injected by the test harness
    /// (an "external client" outside the simulated world).
    pub const EXTERNAL: Pid = Pid(u32::MAX);

    /// Returns `true` for the harness pseudo-process.
    pub fn is_external(self) -> bool {
        self == Pid::EXTERNAL
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_external() {
            write!(f, "p(ext)")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A handle naming a pending timer, used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_pid_is_recognised() {
        assert!(Pid::EXTERNAL.is_external());
        assert!(!Pid(0).is_external());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", Pid(7)), "p7");
        assert_eq!(format!("{:?}", Pid::EXTERNAL), "p(ext)");
        assert_eq!(format!("{:?}", SiteId(1)), "site1");
        assert_eq!(format!("{:?}", TimerId(9)), "timer#9");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(Pid(1) < Pid(2));
        assert!(NodeId(0) < NodeId(1));
    }
}
