//! Measurement infrastructure.
//!
//! Every quantitative claim reproduced from the paper is a statement about
//! message counts, destination counts, state sizes, or latencies. Those are
//! collected *here*, centrally, so protocol code needs no instrumentation
//! beyond optional named counters and latency samples.
//!
//! Named counters and series are **interned**: the first `bump`/`sample`
//! of a name registers it and assigns a dense [`CounterId`]/[`SeriesId`];
//! every subsequent hit is an array index. Hot protocol paths can resolve
//! the id once (via [`Stats::counter_id`] / [`Stats::series_id`]) and bump
//! through the handle, which costs neither an allocation nor a tree walk.
//! The name→id table is consulted only at registration and report time.

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::Pid;
use crate::time::{SimDuration, SimTime};

/// Dense handle for a named counter, assigned at first registration.
///
/// Ids are deterministic for a fixed registration order (which, in a
/// deterministic simulation, is itself fixed by the seed and harness
/// script); reports are keyed by *name*, so ids never leak into output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CounterId(u32);

/// Dense handle for a named sample series. See [`CounterId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId(u32);

/// Per-process message counters.
#[derive(Clone, Debug, Default)]
pub struct ProcStats {
    /// Messages this process sent (per destination, including loopback).
    pub sent: u64,
    /// Messages delivered to this process.
    pub received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages addressed to this process that the network dropped.
    pub dropped_to: u64,
}

/// A latency/size sample series with streaming percentile summary.
#[derive(Clone, Debug, Default)]
pub struct Series {
    samples: Vec<f64>,
}

impl Series {
    /// Records one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    ///
    /// Summation runs over a *sorted* copy so the result is independent of
    /// the order samples were recorded in. The parallel engine drains
    /// per-shard series shard-by-shard, which permutes sample order relative
    /// to a sequential run; sorting first keeps the floating-point sum (and
    /// therefore every report byte) identical at any `NOW_SIM_JOBS`.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample recorded"));
        sorted.iter().sum::<f64>() / sorted.len() as f64
    }

    /// Maximum sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The `q`-quantile (0.0..=1.0) by nearest-rank, or 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample recorded"));
        let rank = ((q * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len())
            - 1;
        sorted[rank]
    }

    /// Convenience: the median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Borrow the raw samples.
    pub fn raw(&self) -> &[f64] {
        &self.samples
    }
}

/// Global simulation statistics.
///
/// Collected by the engine on every send/delivery; experiments read them
/// after (or during) a run. Named counters and series let protocol layers
/// record domain events (view changes, broadcasts completed, end-to-end
/// latencies) without new plumbing.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Total messages handed to the network (including later-dropped ones).
    pub messages_sent: u64,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Total messages dropped by the network (loss or partition).
    pub messages_dropped: u64,
    /// Of the dropped messages, those addressed to a previous incarnation
    /// of a restarted process (stale-life traffic, also in `messages_dropped`).
    pub messages_stale_dropped: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Per-process counters, indexed by `Pid.0`.
    per_proc: Vec<ProcStats>,
    /// Distinct destinations each process has contacted. Enabled on demand
    /// because it costs a hash-set per process.
    fanout_tracking: Option<Vec<BTreeSet<Pid>>>,
    /// Name→id registration table for counters (registration/report only).
    counter_index: BTreeMap<&'static str, u32>,
    /// Counter names, indexed by `CounterId`.
    counter_names: Vec<&'static str>,
    /// Counter values, indexed by `CounterId` — the hot-path store.
    counter_slots: Vec<u64>,
    /// Name→id registration table for series (registration/report only).
    series_index: BTreeMap<&'static str, u32>,
    /// Series names, indexed by `SeriesId`.
    series_names: Vec<&'static str>,
    /// Series values, indexed by `SeriesId` — the hot-path store.
    series_slots: Vec<Series>,
}

impl Stats {
    /// Enables per-process distinct-destination tracking (experiment E8).
    pub fn enable_fanout_tracking(&mut self) {
        if self.fanout_tracking.is_none() {
            let n = self.per_proc.len();
            self.fanout_tracking = Some(vec![BTreeSet::new(); n]);
        }
    }

    /// Whether distinct-destination tracking is on. The parallel engine
    /// checks this when it explodes a sim into worker shards: every worker
    /// books sends through its own table, so tracking must be armed there
    /// too or windowed sends silently vanish from the fanout census.
    pub fn fanout_tracking_enabled(&self) -> bool {
        self.fanout_tracking.is_some()
    }

    /// Grows the per-process table to cover `pid`. Public for external
    /// transport backends that host processes (see [`Stats::record_send`]).
    pub fn ensure_proc(&mut self, pid: Pid) {
        let idx = pid.0 as usize;
        if self.per_proc.len() <= idx {
            self.per_proc.resize_with(idx + 1, ProcStats::default);
            if let Some(f) = &mut self.fanout_tracking {
                f.resize_with(idx + 1, BTreeSet::new);
            }
        }
    }

    /// Counts one message leaving `from` for `to`. Public so transport
    /// backends outside this crate (the `now-net` daemon) keep the same
    /// books as the simulator.
    pub fn record_send(&mut self, from: Pid, to: Pid, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        if !from.is_external() {
            self.ensure_proc(from);
            let p = &mut self.per_proc[from.0 as usize];
            p.sent += 1;
            p.bytes_sent += bytes as u64;
            if let Some(f) = &mut self.fanout_tracking {
                f[from.0 as usize].insert(to);
            }
        }
    }

    /// Counts one delivery at `to` (see [`Stats::record_send`]).
    pub fn record_delivery(&mut self, to: Pid) {
        self.messages_delivered += 1;
        self.ensure_proc(to);
        self.per_proc[to.0 as usize].received += 1;
    }

    /// Counts one drop bound for `to` (see [`Stats::record_send`]).
    pub fn record_drop(&mut self, to: Pid) {
        self.messages_dropped += 1;
        if !to.is_external() {
            self.ensure_proc(to);
            self.per_proc[to.0 as usize].dropped_to += 1;
        }
    }

    /// Counts one drop of a message addressed to a previous incarnation of
    /// `to` (a restarted process). Stale drops are also ordinary drops.
    pub fn record_stale_drop(&mut self, to: Pid) {
        self.messages_stale_dropped += 1;
        self.record_drop(to);
    }

    /// Per-process counters for `pid` (zeroes if it never communicated).
    pub fn proc(&self, pid: Pid) -> ProcStats {
        self.per_proc
            .get(pid.0 as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// The number of distinct destinations `pid` has contacted.
    ///
    /// # Panics
    ///
    /// Panics unless [`Stats::enable_fanout_tracking`] was called before the
    /// sends of interest.
    pub fn distinct_destinations(&self, pid: Pid) -> usize {
        let f = self
            .fanout_tracking
            .as_ref()
            .expect("fanout tracking not enabled");
        f.get(pid.0 as usize).map_or(0, BTreeSet::len)
    }

    /// The largest distinct-destination count over all processes — the
    /// paper's *fanout* bound, measured.
    pub fn max_distinct_destinations(&self) -> usize {
        let f = self
            .fanout_tracking
            .as_ref()
            .expect("fanout tracking not enabled");
        f.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Registers (or looks up) the named counter, returning its dense id.
    /// Resolve once, bump through [`Stats::bump_id`] forever after.
    pub fn counter_id(&mut self, name: &'static str) -> CounterId {
        if let Some(&id) = self.counter_index.get(name) {
            return CounterId(id);
        }
        let id = self.counter_slots.len() as u32;
        self.counter_index.insert(name, id);
        self.counter_names.push(name);
        self.counter_slots.push(0);
        CounterId(id)
    }

    /// Registers (or looks up) the named series, returning its dense id.
    pub fn series_id(&mut self, name: &'static str) -> SeriesId {
        if let Some(&id) = self.series_index.get(name) {
            return SeriesId(id);
        }
        let id = self.series_slots.len() as u32;
        self.series_index.insert(name, id);
        self.series_names.push(name);
        self.series_slots.push(Series::default());
        SeriesId(id)
    }

    /// Adds `n` to an interned counter — a single array index.
    #[inline]
    pub fn bump_id_by(&mut self, id: CounterId, n: u64) {
        self.counter_slots[id.0 as usize] += n;
    }

    /// Adds 1 to an interned counter — a single array index.
    #[inline]
    pub fn bump_id(&mut self, id: CounterId) {
        self.bump_id_by(id, 1);
    }

    /// Records one sample in an interned series — a single array index.
    #[inline]
    pub fn sample_id(&mut self, id: SeriesId, v: f64) {
        self.series_slots[id.0 as usize].push(v);
    }

    /// Adds `n` to the named counter (registering it on first use). No
    /// allocation; cold paths may prefer this over carrying a handle.
    pub fn bump_by(&mut self, name: &'static str, n: u64) {
        let id = self.counter_id(name);
        self.bump_id_by(id, n);
    }

    /// Adds 1 to the named counter.
    pub fn bump(&mut self, name: &'static str) {
        self.bump_by(name, 1);
    }

    /// Reads a named counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map_or(0, |&id| self.counter_slots[id as usize])
    }

    /// Reads an interned counter.
    pub fn counter_by_id(&self, id: CounterId) -> u64 {
        self.counter_slots[id.0 as usize]
    }

    /// All named counters, sorted by name (built at report time).
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counter_index
            .iter()
            .map(|(&name, &id)| (name.to_owned(), self.counter_slots[id as usize]))
            .collect()
    }

    /// Records one sample in the named series (registering on first use).
    pub fn sample(&mut self, name: &'static str, v: f64) {
        let id = self.series_id(name);
        self.sample_id(id, v);
    }

    /// Records a duration sample in milliseconds.
    pub fn sample_duration(&mut self, name: &'static str, d: SimDuration) {
        self.sample(name, d.as_millis_f64());
    }

    /// Reads a named series (empty when never sampled).
    pub fn series(&self, name: &str) -> Series {
        self.series_index
            .get(name)
            .map_or_else(Series::default, |&id| self.series_slots[id as usize].clone())
    }

    /// Resets message counters and series but keeps process table sizing
    /// (and counter/series registrations — cleared slots read as zero).
    ///
    /// Used by experiments that let the system reach steady state, then
    /// measure a window.
    pub fn reset_window(&mut self) {
        self.messages_sent = 0;
        self.messages_delivered = 0;
        self.messages_dropped = 0;
        self.messages_stale_dropped = 0;
        self.bytes_sent = 0;
        for p in &mut self.per_proc {
            *p = ProcStats::default();
        }
        if let Some(f) = &mut self.fanout_tracking {
            for s in f.iter_mut() {
                s.clear();
            }
        }
        for c in &mut self.counter_slots {
            *c = 0;
        }
        for s in &mut self.series_slots {
            *s = Series::default();
        }
    }

    /// Drains every count, sample, and set in `self` into `dst`, matching
    /// named counters/series *by name* (ids may differ between tables).
    ///
    /// This is the merge step of the parallel engine: each worker shard
    /// accumulates into its own `Stats`, and the shards are drained into the
    /// main table at synchronisation points. All merged quantities are
    /// commutative (sums, set unions, sample multisets), so the result is
    /// independent of shard count. `self` keeps its registrations and table
    /// sizing — cleared slots read as zero — so interned ids held by
    /// processes stay valid across the drain.
    pub fn drain_into(&mut self, dst: &mut Stats) {
        dst.messages_sent += std::mem::take(&mut self.messages_sent);
        dst.messages_delivered += std::mem::take(&mut self.messages_delivered);
        dst.messages_dropped += std::mem::take(&mut self.messages_dropped);
        dst.messages_stale_dropped += std::mem::take(&mut self.messages_stale_dropped);
        dst.bytes_sent += std::mem::take(&mut self.bytes_sent);
        if !self.per_proc.is_empty() {
            dst.ensure_proc(Pid(self.per_proc.len() as u32 - 1));
            for (i, p) in self.per_proc.iter_mut().enumerate() {
                let d = &mut dst.per_proc[i];
                d.sent += p.sent;
                d.received += p.received;
                d.bytes_sent += p.bytes_sent;
                d.dropped_to += p.dropped_to;
                *p = ProcStats::default();
            }
        }
        if let Some(f) = &mut self.fanout_tracking {
            dst.enable_fanout_tracking();
            let df = dst.fanout_tracking.as_mut().expect("just enabled");
            if df.len() < f.len() {
                df.resize_with(f.len(), BTreeSet::new);
            }
            for (i, s) in f.iter_mut().enumerate() {
                df[i].append(s);
            }
        }
        // Zero counters and empty series still register in `dst`: a report
        // lists every *registered* name, so an interned-but-never-bumped
        // counter must show up (as zero) exactly as it would sequentially.
        for (&name, &id) in &self.counter_index {
            let v = std::mem::take(&mut self.counter_slots[id as usize]);
            dst.bump_by(name, v);
        }
        for (&name, &id) in &self.series_index {
            let s = &mut self.series_slots[id as usize];
            let did = dst.series_id(name);
            dst.series_slots[did.0 as usize]
                .samples
                .append(&mut s.samples);
        }
    }

    /// Sum of messages sent by every process in `pids`.
    pub fn sent_by(&self, pids: impl IntoIterator<Item = Pid>) -> u64 {
        pids.into_iter().map(|p| self.proc(p).sent).sum()
    }

    /// Sum of messages received by every process in `pids`.
    pub fn received_by(&self, pids: impl IntoIterator<Item = Pid>) -> u64 {
        pids.into_iter().map(|p| self.proc(p).received).sum()
    }
}

/// A single observation a process can emit for the harness to collect, with
/// the simulated time at which it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct Observation {
    /// When the observation was emitted.
    pub at: SimTime,
    /// The emitting process.
    pub by: Pid,
    /// Static label, e.g. `"delivered"` (static so emission never allocates).
    pub label: &'static str,
    /// Numeric payload (meaning depends on the label).
    pub value: f64,
}

/// An append-only log of observations emitted by processes via
/// [`crate::Ctx::observe`].
#[derive(Clone, Debug, Default)]
pub struct ObservationLog {
    entries: Vec<Observation>,
}

impl ObservationLog {
    pub(crate) fn push(&mut self, obs: Observation) {
        self.entries.push(obs);
    }

    /// All observations in emission order.
    pub fn all(&self) -> &[Observation] {
        &self.entries
    }

    /// Observations with the given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Observation> {
        self.entries.iter().filter(move |o| o.label == label)
    }

    /// Count of observations with the given label.
    pub fn count(&self, label: &str) -> usize {
        self.with_label(label).count()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Hands over all entries (parallel-window merge: workers drain their
    /// local logs and the coordinator re-appends them in merged event order).
    pub(crate) fn drain_entries(&mut self) -> Vec<Observation> {
        std::mem::take(&mut self.entries)
    }

    /// Appends one observation in merged order (coordinator side).
    pub(crate) fn append(&mut self, obs: Observation) {
        self.entries.push(obs);
    }
}

/// Histogram-style bucket summary used by report printers.
#[derive(Clone, Debug, Default)]
pub struct CountMap<K: Ord> {
    counts: BTreeMap<K, u64>,
}

impl<K: Ord> CountMap<K> {
    /// Creates an empty count map.
    pub fn new() -> CountMap<K> {
        CountMap {
            counts: BTreeMap::new(),
        }
    }

    /// Adds one to the bucket for `k`.
    pub fn bump(&mut self, k: K) {
        *self.counts.entry(k).or_insert(0) += 1;
    }

    /// Reads the bucket for `k`.
    pub fn get(&self, k: &K) -> u64 {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// Iterates buckets in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }
}

/// Extension: aggregates a `BTreeMap<Pid, u64>` into the hottest entries, for
/// reports about which processes carry the load.
pub fn hottest(map: &BTreeMap<Pid, u64>, k: usize) -> Vec<(Pid, u64)> {
    let mut v: Vec<(Pid, u64)> = map.iter().map(|(p, c)| (*p, *c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_percentiles() {
        let mut s = Series::default();
        for i in 1..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn series_empty_is_zero() {
        let s = Series::default();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn send_and_delivery_counters() {
        let mut st = Stats::default();
        st.record_send(Pid(0), Pid(1), 100);
        st.record_send(Pid(0), Pid(2), 50);
        st.record_delivery(Pid(1));
        st.record_drop(Pid(2));
        assert_eq!(st.messages_sent, 2);
        assert_eq!(st.messages_delivered, 1);
        assert_eq!(st.messages_dropped, 1);
        assert_eq!(st.bytes_sent, 150);
        assert_eq!(st.proc(Pid(0)).sent, 2);
        assert_eq!(st.proc(Pid(1)).received, 1);
        assert_eq!(st.proc(Pid(2)).dropped_to, 1);
    }

    #[test]
    fn external_sends_counted_globally_only() {
        let mut st = Stats::default();
        st.record_send(Pid::EXTERNAL, Pid(1), 10);
        assert_eq!(st.messages_sent, 1);
        // No per-proc slot was allocated for the external pseudo-pid.
        assert_eq!(st.proc(Pid::EXTERNAL).sent, 0);
    }

    #[test]
    fn fanout_tracking_counts_distinct_destinations() {
        let mut st = Stats::default();
        st.enable_fanout_tracking();
        st.record_send(Pid(0), Pid(1), 1);
        st.record_send(Pid(0), Pid(1), 1);
        st.record_send(Pid(0), Pid(2), 1);
        st.record_send(Pid(3), Pid(4), 1);
        assert_eq!(st.distinct_destinations(Pid(0)), 2);
        assert_eq!(st.distinct_destinations(Pid(3)), 1);
        assert_eq!(st.max_distinct_destinations(), 2);
    }

    #[test]
    fn named_counters_and_series() {
        let mut st = Stats::default();
        st.bump("view_changes");
        st.bump_by("view_changes", 2);
        st.sample("lat", 5.0);
        st.sample("lat", 15.0);
        assert_eq!(st.counter("view_changes"), 3);
        assert_eq!(st.counter("missing"), 0);
        assert_eq!(st.series("lat").mean(), 10.0);
    }

    #[test]
    fn interned_ids_alias_the_named_stores() {
        let mut st = Stats::default();
        let c = st.counter_id("hits");
        let s = st.series_id("lat");
        st.bump_id(c);
        st.bump("hits");
        st.bump_id_by(c, 3);
        st.sample_id(s, 2.0);
        st.sample("lat", 4.0);
        assert_eq!(st.counter("hits"), 5);
        assert_eq!(st.counter_by_id(c), 5);
        assert_eq!(st.series("lat").mean(), 3.0);
        // Re-registering the same name yields the same id.
        assert_eq!(st.counter_id("hits"), c);
        assert_eq!(st.series_id("lat"), s);
    }

    #[test]
    fn counters_report_is_sorted_by_name() {
        let mut st = Stats::default();
        st.bump("zz");
        st.bump("aa");
        st.bump("mm");
        let names: Vec<String> = st.counters().into_keys().collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn reset_window_clears_counts() {
        let mut st = Stats::default();
        st.enable_fanout_tracking();
        let c = st.counter_id("x");
        st.record_send(Pid(0), Pid(1), 10);
        st.bump("x");
        st.sample("s", 1.0);
        st.reset_window();
        assert_eq!(st.messages_sent, 0);
        assert_eq!(st.proc(Pid(0)).sent, 0);
        assert_eq!(st.counter("x"), 0);
        assert_eq!(st.series("s").len(), 0);
        assert_eq!(st.distinct_destinations(Pid(0)), 0);
        // Registrations survive the reset: the handle still works.
        st.bump_id(c);
        assert_eq!(st.counter("x"), 1);
    }

    #[test]
    fn mean_is_independent_of_sample_order() {
        // A sum whose float rounding depends on operand order: summing
        // ascending vs descending gives different bits unless mean() sorts.
        let vals = [1e16, 1.0, -1e16, 3.0, 0.25, 1e8];
        let mut fwd = Series::default();
        let mut rev = Series::default();
        for v in vals {
            fwd.push(v);
        }
        for v in vals.iter().rev() {
            rev.push(*v);
        }
        assert_eq!(fwd.mean().to_bits(), rev.mean().to_bits());
    }

    #[test]
    fn drain_into_merges_by_name_and_keeps_registrations() {
        let mut main = Stats::default();
        let mut shard = Stats::default();
        // Different registration orders: ids differ, names must still line up.
        main.bump("beta");
        shard.bump("alpha");
        shard.bump_by("beta", 4);
        shard.bump_by("zero", 0);
        shard.sample("lat", 2.0);
        shard.sample("lat", 4.0);
        shard.record_send(Pid(3), Pid(1), 7);
        shard.record_delivery(Pid(1));
        shard.enable_fanout_tracking();
        shard.record_send(Pid(0), Pid(5), 1);
        let shard_id = shard.counter_id("alpha");

        shard.drain_into(&mut main);

        assert_eq!(main.counter("alpha"), 1);
        assert_eq!(main.counter("beta"), 5);
        // Never-bumped names still register so they appear in reports.
        assert!(main.counters().contains_key("zero"));
        assert_eq!(main.series("lat").len(), 2);
        assert_eq!(main.messages_sent, 2);
        assert_eq!(main.messages_delivered, 1);
        assert_eq!(main.bytes_sent, 8);
        assert_eq!(main.proc(Pid(3)).sent, 1);
        assert_eq!(main.proc(Pid(1)).received, 1);
        assert_eq!(main.distinct_destinations(Pid(0)), 1);

        // The shard is empty but its interned handles survive.
        assert_eq!(shard.messages_sent, 0);
        assert_eq!(shard.counter("alpha"), 0);
        assert_eq!(shard.series("lat").len(), 0);
        shard.bump_id(shard_id);
        assert_eq!(shard.counter("alpha"), 1);
        // Draining twice is harmless and adds the new bump.
        shard.drain_into(&mut main);
        assert_eq!(main.counter("alpha"), 2);
    }

    #[test]
    fn drain_order_does_not_change_aggregates() {
        // Two shards drained in either order produce identical reports —
        // the commutativity drain_into's determinism argument rests on.
        let build = |order: [usize; 2]| {
            let mut shards = [Stats::default(), Stats::default()];
            shards[0].bump_by("c", 2);
            shards[0].sample("s", 0.25);
            shards[1].bump_by("c", 3);
            shards[1].sample("s", 1e8);
            shards[1].sample("s", 1.0);
            let mut main = Stats::default();
            for i in order {
                shards[i].drain_into(&mut main);
            }
            (
                main.counter("c"),
                main.series("s").mean().to_bits(),
                main.series("s").p50().to_bits(),
            )
        };
        assert_eq!(build([0, 1]), build([1, 0]));
    }

    #[test]
    fn observation_log_filters_by_label() {
        let mut log = ObservationLog::default();
        log.push(Observation {
            at: SimTime(1),
            by: Pid(0),
            label: "a",
            value: 1.0,
        });
        log.push(Observation {
            at: SimTime(2),
            by: Pid(1),
            label: "b",
            value: 2.0,
        });
        assert_eq!(log.count("a"), 1);
        assert_eq!(log.all().len(), 2);
        assert_eq!(log.with_label("b").next().unwrap().value, 2.0);
    }

    #[test]
    fn count_map_buckets() {
        let mut m = CountMap::new();
        m.bump(3);
        m.bump(3);
        m.bump(5);
        assert_eq!(m.get(&3), 2);
        assert_eq!(m.get(&4), 0);
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn hottest_sorts_descending() {
        let mut m = BTreeMap::new();
        m.insert(Pid(1), 5);
        m.insert(Pid(2), 9);
        m.insert(Pid(3), 9);
        let h = hottest(&m, 2);
        assert_eq!(h, vec![(Pid(2), 9), (Pid(3), 9)]);
    }

    #[test]
    fn sent_received_aggregation() {
        let mut st = Stats::default();
        st.record_send(Pid(0), Pid(1), 1);
        st.record_send(Pid(1), Pid(0), 1);
        st.record_delivery(Pid(0));
        st.record_delivery(Pid(1));
        assert_eq!(st.sent_by([Pid(0), Pid(1)]), 2);
        assert_eq!(st.received_by([Pid(0), Pid(1)]), 2);
    }
}
