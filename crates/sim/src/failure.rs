//! Failure-injection schedules.
//!
//! The paper's reliability argument (section 1) is statistical: "the
//! probability of component failures rises steadily with the number of
//! components". This module turns per-workstation failure-rate assumptions
//! into concrete crash schedules, so experiments E4/E5/E10 can inject the
//! same failure pattern into flat and hierarchical configurations.

use crate::det_rand::Rng;
use rand_distr_shim::sample_exponential;

use crate::ids::{NodeId, Pid};
use crate::net::Partition;
use crate::time::{SimDuration, SimTime};

/// A planned crash of one process at one time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedCrash {
    /// When the crash happens.
    pub at: SimTime,
    /// The victim.
    pub victim: Pid,
}

/// Generates an MTBF-driven crash schedule over a population of processes.
///
/// Each process draws an independent exponential time-to-failure with the
/// given mean; crashes after `horizon` are discarded. The result is sorted
/// by time, so it can be fed to `Sim::schedule_crash` in order.
pub fn mtbf_schedule<R: Rng>(
    pids: &[Pid],
    mtbf: SimDuration,
    horizon: SimDuration,
    rng: &mut R,
) -> Vec<PlannedCrash> {
    let mut plan: Vec<PlannedCrash> = pids
        .iter()
        .filter_map(|&victim| {
            let ttf = sample_exponential(mtbf.as_micros() as f64, rng);
            if ttf <= horizon.as_micros() as f64 {
                Some(PlannedCrash {
                    at: SimTime(ttf as u64),
                    victim,
                })
            } else {
                None
            }
        })
        .collect();
    plan.sort_by_key(|c| (c.at, c.victim));
    plan
}

/// Picks `k` distinct victims uniformly from `pids` and schedules their
/// crashes evenly across `(start, end)`. Deterministic given the RNG state.
pub fn staged_crashes<R: Rng>(
    pids: &[Pid],
    k: usize,
    start: SimTime,
    end: SimTime,
    rng: &mut R,
) -> Vec<PlannedCrash> {
    assert!(k <= pids.len(), "cannot crash more processes than exist");
    assert!(end > start, "empty crash window");
    let mut pool: Vec<Pid> = pids.to_vec();
    // Partial Fisher-Yates: the first k slots become the victims.
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    let span = end.since(start).as_micros();
    (0..k)
        .map(|i| PlannedCrash {
            at: start + SimDuration::from_micros(span * (i as u64 + 1) / (k as u64 + 1)),
            victim: pool[i],
        })
        .collect()
}

/// A planned replacement of the whole network partition state at one time.
/// Feed to `Sim::schedule_partition` (or apply with `Sim::set_partition`
/// after `run_until`) in order.
#[derive(Clone, Debug)]
pub struct PlannedPartition {
    /// When the partition state changes.
    pub at: SimTime,
    /// The connectivity that takes effect at `at`.
    pub partition: Partition,
}

/// Generates a *flapping* partition schedule: the network alternates
/// `flaps` times between splitting `minority` into its own cell and healed,
/// starting with a split at `start`. Each phase lasts `period` plus a
/// uniform draw from `[0, jitter]`, and the schedule always ends on a heal
/// so the system can be asked to reconverge. Deterministic given the RNG
/// state: re-running with an equally seeded RNG yields the identical
/// schedule (see the seed-stability tests).
pub fn partition_flaps<R: Rng>(
    minority: &[NodeId],
    start: SimTime,
    period: SimDuration,
    jitter: SimDuration,
    flaps: u32,
    rng: &mut R,
) -> Vec<PlannedPartition> {
    assert!(flaps >= 1, "a flap schedule needs at least one split");
    assert!(period > SimDuration::ZERO, "flap phases must have a duration");
    let mut plan = Vec::with_capacity(2 * flaps as usize);
    let mut at = start;
    for _ in 0..flaps {
        plan.push(PlannedPartition {
            at,
            partition: Partition::split(minority.iter().copied()),
        });
        at += phase_len(period, jitter, rng);
        plan.push(PlannedPartition {
            at,
            partition: Partition::connected(),
        });
        at += phase_len(period, jitter, rng);
    }
    plan
}

fn phase_len<R: Rng>(period: SimDuration, jitter: SimDuration, rng: &mut R) -> SimDuration {
    let j = if jitter == SimDuration::ZERO {
        0
    } else {
        rng.gen_range(0..=jitter.as_micros())
    };
    SimDuration::from_micros(period.as_micros() + j)
}

/// Generates the firing times of a message storm: `n` shots starting at
/// `start`, `gap` apart plus a uniform draw from `[0, jitter]` between
/// consecutive shots. The harness invokes the protocol entry point under
/// test (a broadcast, a request) at each returned time; keeping the storm
/// as a time schedule rather than a message list keeps the primitive
/// protocol-agnostic. Deterministic given the RNG state.
pub fn storm_times<R: Rng>(
    n: u32,
    start: SimTime,
    gap: SimDuration,
    jitter: SimDuration,
    rng: &mut R,
) -> Vec<SimTime> {
    let mut times = Vec::with_capacity(n as usize);
    let mut at = start;
    for i in 0..n {
        if i > 0 {
            at += phase_len(gap, jitter, rng);
        }
        times.push(at);
    }
    times
}

/// Analytic probability that at least one of `n` components with
/// per-component failure probability `p` fails — the paper's "probability of
/// component failures rises steadily with the number of components".
pub fn prob_any_failure(n: usize, p: f64) -> f64 {
    1.0 - (1.0 - p).powi(n as i32)
}

/// Analytic probability that *all* of `r` replicas fail (total failure of a
/// resilient group), assuming independence.
pub fn prob_total_failure(r: usize, p: f64) -> f64 {
    p.powi(r as i32)
}

/// Minimal exponential sampling without pulling in `rand_distr`.
mod rand_distr_shim {
    use crate::det_rand::Rng;

    /// Samples Exp(1/mean) by inverse transform.
    pub fn sample_exponential<R: Rng>(mean: f64, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_rand::DetRng;

    fn pids(n: u32) -> Vec<Pid> {
        (0..n).map(Pid).collect()
    }

    #[test]
    fn mtbf_schedule_is_sorted_and_within_horizon() {
        let mut rng = DetRng::seed_from_u64(1);
        let plan = mtbf_schedule(
            &pids(100),
            SimDuration::from_secs(100),
            SimDuration::from_secs(50),
            &mut rng,
        );
        for w in plan.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for c in &plan {
            assert!(c.at <= SimTime::ZERO + SimDuration::from_secs(50));
        }
    }

    #[test]
    fn mtbf_schedule_scales_with_population() {
        // With horizon == mtbf, each process fails with prob 1-1/e ~ 63%.
        let mut rng = DetRng::seed_from_u64(2);
        let small = mtbf_schedule(
            &pids(50),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            &mut rng,
        );
        let large = mtbf_schedule(
            &pids(500),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            &mut rng,
        );
        assert!(large.len() > small.len() * 5, "more components, more failures");
    }

    #[test]
    fn staged_crashes_picks_distinct_victims() {
        let mut rng = DetRng::seed_from_u64(3);
        let plan = staged_crashes(&pids(20), 10, SimTime(0), SimTime(1_000_000), &mut rng);
        let mut victims: Vec<Pid> = plan.iter().map(|c| c.victim).collect();
        victims.sort();
        victims.dedup();
        assert_eq!(victims.len(), 10);
        for c in &plan {
            assert!(c.at > SimTime(0) && c.at < SimTime(1_000_000));
        }
    }

    #[test]
    #[should_panic(expected = "cannot crash more")]
    fn staged_crashes_rejects_oversized_k() {
        let mut rng = DetRng::seed_from_u64(4);
        let _ = staged_crashes(&pids(3), 4, SimTime(0), SimTime(10), &mut rng);
    }

    #[test]
    fn partition_flaps_alternate_split_and_heal() {
        let mut rng = DetRng::seed_from_u64(6);
        let nodes = [crate::ids::NodeId(1), crate::ids::NodeId(2)];
        let plan = partition_flaps(
            &nodes,
            SimTime(1_000),
            SimDuration::from_millis(50),
            SimDuration::from_millis(10),
            3,
            &mut rng,
        );
        assert_eq!(plan.len(), 6, "each flap is a split followed by a heal");
        assert_eq!(plan[0].at, SimTime(1_000));
        for (i, p) in plan.iter().enumerate() {
            if i % 2 == 0 {
                assert!(!p.partition.is_healed(), "even phases split");
                assert!(!p.partition.connected_pair(crate::ids::NodeId(0), crate::ids::NodeId(1)));
            } else {
                assert!(p.partition.is_healed(), "odd phases heal");
            }
        }
        for w in plan.windows(2) {
            let gap = w[1].at.since(w[0].at);
            assert!(gap >= SimDuration::from_millis(50), "phase at least `period` long");
            assert!(gap <= SimDuration::from_millis(60), "jitter bounded");
        }
        assert!(plan.last().is_some_and(|p| p.partition.is_healed()), "ends healed");
    }

    #[test]
    fn partition_flaps_are_seed_stable() {
        // The same seed must reproduce the identical schedule across
        // re-runs — this is what makes a violating fuzz schedule replayable.
        let nodes = [crate::ids::NodeId(3), crate::ids::NodeId(7)];
        let gen = |seed: u64| {
            let mut rng = DetRng::seed_from_u64(seed);
            partition_flaps(
                &nodes,
                SimTime(0),
                SimDuration::from_millis(20),
                SimDuration::from_millis(20),
                5,
                &mut rng,
            )
            .iter()
            .map(|p| (p.at, p.partition.cells_in_use().len()))
            .collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42), "same seed, same schedule");
        assert_ne!(gen(42), gen(43), "jitter actually depends on the seed");
    }

    #[test]
    fn storm_times_are_seed_stable_and_ordered() {
        let gen = |seed: u64| {
            let mut rng = DetRng::seed_from_u64(seed);
            storm_times(
                40,
                SimTime(500),
                SimDuration::from_micros(200),
                SimDuration::from_micros(300),
                &mut rng,
            )
        };
        let a = gen(9);
        assert_eq!(a, gen(9), "same seed, same storm");
        assert_ne!(a, gen(10));
        assert_eq!(a.len(), 40);
        assert_eq!(a[0], SimTime(500));
        for w in a.windows(2) {
            let gap = w[1].since(w[0]);
            assert!(gap >= SimDuration::from_micros(200));
            assert!(gap <= SimDuration::from_micros(500));
        }
        // Jitter-free storms are evenly spaced.
        let mut rng = DetRng::seed_from_u64(1);
        let even = storm_times(4, SimTime(0), SimDuration::from_micros(100), SimDuration::ZERO, &mut rng);
        assert_eq!(
            even,
            vec![SimTime(0), SimTime(100), SimTime(200), SimTime(300)]
        );
    }

    #[test]
    fn analytic_failure_probabilities() {
        assert!((prob_any_failure(1, 0.1) - 0.1).abs() < 1e-12);
        // More components -> strictly higher failure probability.
        assert!(prob_any_failure(100, 0.01) > prob_any_failure(10, 0.01));
        // Five nines from three replicas each 1% unreliable.
        assert!((prob_total_failure(3, 0.01) - 1e-6).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(prob_any_failure(0, 0.5), 0.0);
        assert_eq!(prob_total_failure(0, 0.5), 1.0);
    }

    #[test]
    fn exponential_sample_mean_is_plausible() {
        let mut rng = DetRng::seed_from_u64(5);
        let mean = 1_000.0;
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| super::rand_distr_shim::sample_exponential(mean, &mut rng))
            .sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}"
        );
    }
}
