//! Failure-injection schedules.
//!
//! The paper's reliability argument (section 1) is statistical: "the
//! probability of component failures rises steadily with the number of
//! components". This module turns per-workstation failure-rate assumptions
//! into concrete crash schedules, so experiments E4/E5/E10 can inject the
//! same failure pattern into flat and hierarchical configurations.

use crate::det_rand::Rng;
use rand_distr_shim::sample_exponential;

use crate::ids::Pid;
use crate::time::{SimDuration, SimTime};

/// A planned crash of one process at one time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedCrash {
    /// When the crash happens.
    pub at: SimTime,
    /// The victim.
    pub victim: Pid,
}

/// Generates an MTBF-driven crash schedule over a population of processes.
///
/// Each process draws an independent exponential time-to-failure with the
/// given mean; crashes after `horizon` are discarded. The result is sorted
/// by time, so it can be fed to `Sim::schedule_crash` in order.
pub fn mtbf_schedule<R: Rng>(
    pids: &[Pid],
    mtbf: SimDuration,
    horizon: SimDuration,
    rng: &mut R,
) -> Vec<PlannedCrash> {
    let mut plan: Vec<PlannedCrash> = pids
        .iter()
        .filter_map(|&victim| {
            let ttf = sample_exponential(mtbf.as_micros() as f64, rng);
            if ttf <= horizon.as_micros() as f64 {
                Some(PlannedCrash {
                    at: SimTime(ttf as u64),
                    victim,
                })
            } else {
                None
            }
        })
        .collect();
    plan.sort_by_key(|c| (c.at, c.victim));
    plan
}

/// Picks `k` distinct victims uniformly from `pids` and schedules their
/// crashes evenly across `(start, end)`. Deterministic given the RNG state.
pub fn staged_crashes<R: Rng>(
    pids: &[Pid],
    k: usize,
    start: SimTime,
    end: SimTime,
    rng: &mut R,
) -> Vec<PlannedCrash> {
    assert!(k <= pids.len(), "cannot crash more processes than exist");
    assert!(end > start, "empty crash window");
    let mut pool: Vec<Pid> = pids.to_vec();
    // Partial Fisher-Yates: the first k slots become the victims.
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    let span = end.since(start).as_micros();
    (0..k)
        .map(|i| PlannedCrash {
            at: start + SimDuration::from_micros(span * (i as u64 + 1) / (k as u64 + 1)),
            victim: pool[i],
        })
        .collect()
}

/// Analytic probability that at least one of `n` components with
/// per-component failure probability `p` fails — the paper's "probability of
/// component failures rises steadily with the number of components".
pub fn prob_any_failure(n: usize, p: f64) -> f64 {
    1.0 - (1.0 - p).powi(n as i32)
}

/// Analytic probability that *all* of `r` replicas fail (total failure of a
/// resilient group), assuming independence.
pub fn prob_total_failure(r: usize, p: f64) -> f64 {
    p.powi(r as i32)
}

/// Minimal exponential sampling without pulling in `rand_distr`.
mod rand_distr_shim {
    use crate::det_rand::Rng;

    /// Samples Exp(1/mean) by inverse transform.
    pub fn sample_exponential<R: Rng>(mean: f64, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_rand::DetRng;

    fn pids(n: u32) -> Vec<Pid> {
        (0..n).map(Pid).collect()
    }

    #[test]
    fn mtbf_schedule_is_sorted_and_within_horizon() {
        let mut rng = DetRng::seed_from_u64(1);
        let plan = mtbf_schedule(
            &pids(100),
            SimDuration::from_secs(100),
            SimDuration::from_secs(50),
            &mut rng,
        );
        for w in plan.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for c in &plan {
            assert!(c.at <= SimTime::ZERO + SimDuration::from_secs(50));
        }
    }

    #[test]
    fn mtbf_schedule_scales_with_population() {
        // With horizon == mtbf, each process fails with prob 1-1/e ~ 63%.
        let mut rng = DetRng::seed_from_u64(2);
        let small = mtbf_schedule(
            &pids(50),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            &mut rng,
        );
        let large = mtbf_schedule(
            &pids(500),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            &mut rng,
        );
        assert!(large.len() > small.len() * 5, "more components, more failures");
    }

    #[test]
    fn staged_crashes_picks_distinct_victims() {
        let mut rng = DetRng::seed_from_u64(3);
        let plan = staged_crashes(&pids(20), 10, SimTime(0), SimTime(1_000_000), &mut rng);
        let mut victims: Vec<Pid> = plan.iter().map(|c| c.victim).collect();
        victims.sort();
        victims.dedup();
        assert_eq!(victims.len(), 10);
        for c in &plan {
            assert!(c.at > SimTime(0) && c.at < SimTime(1_000_000));
        }
    }

    #[test]
    #[should_panic(expected = "cannot crash more")]
    fn staged_crashes_rejects_oversized_k() {
        let mut rng = DetRng::seed_from_u64(4);
        let _ = staged_crashes(&pids(3), 4, SimTime(0), SimTime(10), &mut rng);
    }

    #[test]
    fn analytic_failure_probabilities() {
        assert!((prob_any_failure(1, 0.1) - 0.1).abs() < 1e-12);
        // More components -> strictly higher failure probability.
        assert!(prob_any_failure(100, 0.01) > prob_any_failure(10, 0.01));
        // Five nines from three replicas each 1% unreliable.
        assert!((prob_total_failure(3, 0.01) - 1e-6).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(prob_any_failure(0, 0.5), 0.0);
        assert_eq!(prob_total_failure(0, 0.5), 1.0);
    }

    #[test]
    fn exponential_sample_mean_is_plausible() {
        let mut rng = DetRng::seed_from_u64(5);
        let mean = 1_000.0;
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| super::rand_distr_shim::sample_exponential(mean, &mut rng))
            .sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}"
        );
    }
}
