//! `detprop`: a minimal, fully deterministic property-testing harness.
//!
//! The workspace's property tests were written against the `proptest` crate;
//! this module provides the subset of that API they use, backed by
//! [`crate::det_rand::DetRng`] instead of an OS entropy source, so that
//! (a) the workspace builds with no network access and (b) property tests
//! are *replayable*: each test function derives its RNG seed from its own
//! name, so a failure reproduces exactly on every machine, every run.
//!
//! What is intentionally missing compared to `proptest`: *value-level*
//! shrinking (failing inputs are printed verbatim instead), persistence
//! files, and the full strategy combinator zoo. Shrinking in this workspace
//! happens one level up: the `now-chaos` crate delta-debugs failing fault
//! *schedules* down to a minimal reproduction, and its shrinker budget
//! honours [`ProptestConfig::max_shrink_iters`] (via
//! `now_chaos::ShrinkBudget::from`). Tests migrate by replacing
//! `use proptest::prelude::*` with `use now_sim::detprop::prelude::*` and
//! `proptest::collection::vec` with `prop::collection::vec`.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::det_rand::{DetRng, Rng, SampleUniform};

/// Runner configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
    /// Shrink-iteration budget. `detprop` itself performs **no value-level
    /// shrinking** — a failing input is printed verbatim, never minimised —
    /// so inside this crate the value has no effect. It is *not* silently
    /// lost, though: the scenario-level delta-debugging shrinker in
    /// `now-chaos` (`ShrinkBudget::from(&ProptestConfig)`) uses it as its
    /// re-run budget when minimising a violating fault schedule. `0` means
    /// "use the downstream shrinker's default budget".
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32, max_shrink_iters: 0 }
    }
}

/// A recipe for generating random values of one type.
///
/// Unlike `proptest`'s two-layer `Strategy`/`ValueTree` design there is no
/// shrinking, so a strategy is just a sampling function. The trait is
/// object-safe so `prop_oneof!` can mix heterogeneous arms.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the deterministic stream.
    fn sample(&self, rng: &mut DetRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut DetRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<S: Strategy + ?Sized> Strategy for Rc<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut DetRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut DetRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut DetRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut DetRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a canonical "any value" strategy, the target of [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut DetRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut DetRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut DetRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut DetRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of type `T` (`any::<bool>()`, `any::<usize>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Weighted choice among heterogeneous arms; built by `prop_oneof!`.
///
/// Arms are reference-counted trait objects so the whole strategy stays
/// cheaply `Clone`, which the original `proptest` idiom (`key.clone()`)
/// relies on.
pub struct OneOf<T> {
    arms: Vec<(u32, Rc<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> OneOf<T> {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> OneOf<T> {
    /// Builds a weighted choice; every weight must be positive.
    pub fn new(arms: Vec<(u32, Rc<dyn Strategy<Value = T>>)>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().all(|(w, _)| *w > 0), "zero weight in prop_oneof!");
        let total = arms.iter().map(|(w, _)| w).sum();
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut DetRng) -> T {
        let mut roll = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if roll < *w {
                return arm.sample(rng);
            }
            roll -= w;
        }
        unreachable!("roll exceeded total weight");
    }
}

/// Boxes a strategy arm for [`OneOf`]; used by `prop_oneof!` so the arm
/// types unify without naming them.
pub fn arm<S>(s: S) -> Rc<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Rc::new(s)
}

/// Length specification for [`collection::vec`]: an exact length or a
/// half-open range, mirroring `proptest`'s `SizeRange` conversions.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{DetRng, Rng, SizeRange, Strategy};

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut DetRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Namespace alias so `prop::collection::vec(...)` reads as in `proptest`.
pub mod prop {
    pub use super::collection;
}

/// Derives the per-test RNG seed from the test's full path, so every
/// property test has a distinct but fixed random stream.
pub fn seed_for(test_path: &str) -> u64 {
    // FNV-1a, 64-bit.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use super::{any, prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares deterministic property tests. Accepts the same shape the
/// `proptest` crate's macro does for the patterns used in this workspace:
/// an optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies via `arg in strat`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__detprop_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__detprop_fns! { cfg = $crate::detprop::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __detprop_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::detprop::ProptestConfig = $cfg;
                let __seed = $crate::detprop::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __rng = $crate::det_rand::DetRng::seed_from_u64(__seed);
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::detprop::Strategy::sample(&$strat, &mut __rng);
                    )+
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $arg.clone();)+
                        $body
                    }));
                    if let Err(__panic) = __result {
                        eprintln!(
                            "proptest {} failed on case {}/{} (seed {:#x}):",
                            stringify!($name), __case + 1, __cfg.cases, __seed
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strat`) or uniform choice among strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::detprop::OneOf::new(vec![$(($w, $crate::detprop::arm($s))),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::detprop::OneOf::new(vec![$((1, $crate::detprop::arm($s))),+])
    };
}

/// Assertion inside a property body; panics (no shrinking), so it is just
/// `assert!` under a `proptest`-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{seed_for, Strategy};
    use crate::det_rand::DetRng;

    #[test]
    fn seeds_differ_by_test_name() {
        assert_ne!(seed_for("a::t1"), seed_for("a::t2"));
        assert_eq!(seed_for("a::t1"), seed_for("a::t1"));
    }

    #[test]
    fn range_and_map_sample_in_bounds() {
        let mut rng = DetRng::seed_from_u64(1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn oneof_honours_weights_roughly() {
        let mut rng = DetRng::seed_from_u64(2);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let t = (0..10_000).filter(|_| s.sample(&mut rng)).count();
        assert!((8_500..9_500).contains(&t), "t={t}");
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = DetRng::seed_from_u64(3);
        let ranged = prop::collection::vec(0u8..5, 2..7);
        let exact = prop::collection::vec(any::<bool>(), 4);
        for _ in 0..200 {
            let v = ranged.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            assert_eq!(exact.sample(&mut rng).len(), 4);
        }
    }

    #[test]
    fn tuple_strategies_compose() {
        let mut rng = DetRng::seed_from_u64(4);
        let s = (Just("k"), 0u32..3, 0u32..3).prop_map(|(k, a, b)| format!("{k}{a}{b}"));
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert_eq!(v.len(), 3);
            assert!(v.starts_with('k'));
        }
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(
            xs in prop::collection::vec(0i64..100, 1..20),
            flip in any::<bool>(),
        ) {
            let sum: i64 = xs.iter().sum();
            prop_assert!(sum >= 0);
            prop_assert_eq!(xs.is_empty(), false);
            let _ = flip;
        }
    }
}
