//! Simulated time.
//!
//! The simulator uses a discrete clock measured in microseconds. Wrapping
//! arithmetic is never wanted in a simulation, so all operations saturate or
//! panic on overflow in debug builds via the standard integer semantics; at
//! the magnitudes used here (hours of simulated time) overflow is unreachable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulated clock, in microseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this indicates a harness bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// A duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// A duration of `s` seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration as fractional milliseconds, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl std::ops::Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_addition_and_subtraction_round_trip() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(t - SimTime(1_000), SimDuration::from_micros(4_000));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_millis(1),
            SimDuration::from_micros(1_000)
        );
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime(3).since(SimTime(7));
    }

    #[test]
    fn saturating_sub_stops_at_zero() {
        assert_eq!(
            SimTime(10).saturating_sub(SimDuration::from_micros(50)),
            SimTime::ZERO
        );
    }

    #[test]
    fn display_formats_are_humane() {
        assert_eq!(format!("{}", SimTime(1_500_000)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_micros(2_500)), "2.500ms");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn mul_div_scale_durations() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 4, SimDuration::from_micros(2_500));
    }
}
