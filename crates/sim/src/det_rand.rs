//! `det-rand`: the workspace's only source of randomness.
//!
//! Every stochastic choice in the simulator and the protocols above it —
//! link jitter, loss sampling, failure schedules, workload generators —
//! draws from a [`DetRng`] seeded explicitly by the harness. There is no
//! entropy source anywhere: two runs with the same seed replay the same
//! random stream bit for bit, which is what lets EXPERIMENTS.md state
//! exact message counts. The `detlint` tool (rule R2) rejects any attempt
//! to reintroduce `thread_rng`/`from_entropy`-style seeding or wall-clock
//! reads.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded by expanding a
//! single `u64` through SplitMix64 — the standard, portable construction.
//! Both algorithms are public domain; the implementation here is from the
//! reference descriptions, kept dependency-free so the workspace builds
//! with no network access.

/// The seed-expansion generator: SplitMix64.
///
/// Used to turn one `u64` seed into the four xoshiro256** state words; also
/// usable standalone when a tiny, splittable stream is enough.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workhorse generator: xoshiro256** with SplitMix64 seeding.
///
/// Replaces the external `rand::rngs::StdRng` this workspace used to
/// depend on. Construction is explicit ([`DetRng::seed_from_u64`]); there
/// is deliberately no `Default`, no `new()` from entropy, and no global
/// instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> DetRng {
        let mut sm = SplitMix64::new(seed);
        DetRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for DetRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The deterministic-randomness trait: what protocol code is allowed to
/// ask of a generator. Mirrors the subset of the old `rand::Rng` API the
/// workspace actually used, so call sites read the same.
pub trait Rng {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform sample from `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased integer sampling in `[0, bound)` by rejection (Lemire-style
/// widening multiply would be fine too; rejection keeps the code obvious).
fn uniform_u64<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                (lo as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + rng.gen_f64() * (hi - lo)
    }
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range in gen_range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_splitmix64() {
        // Reference outputs for seed 1234567 (from the SplitMix64 paper's
        // reference implementation).
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(first, sm2.next_u64());
        assert_ne!(first, sm.next_u64());
    }

    #[test]
    fn gen_range_half_open_stays_in_bounds() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = DetRng::seed_from_u64(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match rng.gen_range(0u64..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = DetRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = DetRng::seed_from_u64(7);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(8);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "bucket={b}");
        }
    }
}
