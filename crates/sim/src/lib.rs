//! `now-sim` — a deterministic discrete-event simulator of a network of
//! workstations (NOW), the substrate for the ISIS hierarchical process group
//! reproduction.
//!
//! The paper ("Supporting Large Scale Applications on Networks of
//! Workstations", Cooper & Birman 1989) makes claims about message counts,
//! broadcast destination counts, per-process state sizes, and failure
//! scopes. All of those are *protocol* properties; this simulator provides
//! the world in which the protocols run and the instrumentation that counts
//! them — deterministically, so experiments are exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use now_sim::{Ctx, Pid, Process, Sim, SimConfig, SimTime};
//!
//! struct Counter(u32);
//!
//! impl Process for Counter {
//!     type Msg = u32;
//!     fn on_message(&mut self, _from: Pid, msg: u32, _ctx: &mut Ctx<'_, u32>) {
//!         self.0 += msg;
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::ideal(42));
//! let node = sim.add_nodes(1)[0];
//! let p = sim.spawn(node, Counter(0));
//! sim.inject(p, 7);
//! sim.run_to_quiescence(SimTime(1_000_000));
//! assert_eq!(sim.process(p).0, 7);
//! ```

/// Re-export of the causal tracing + invariant-monitor crate, so the
/// protocol layers (which depend only on `now-sim`) can name event kinds
/// and drive tracers without a manifest change.
pub use now_trace as trace;

pub mod det_rand;
pub mod detprop;
pub mod engine;
pub mod failure;
pub mod ids;
pub mod net;
pub mod par;
pub mod stats;
pub mod time;
pub mod transport;

pub use det_rand::{DetRng, Rng};
pub use engine::{Process, Sim, SimConfig};
pub use transport::{dispatch, Action, Ctx, Endpoint, Transport};
pub use ids::{NodeId, Pid, SiteId, TimerId};
pub use net::{LinkModel, NetConfig, Partition};
pub use stats::{CounterId, ObservationLog, Series, SeriesId, Stats};
pub use time::{SimDuration, SimTime};
