//! Property-based tests of the simulation engine: time monotonicity, FIFO
//! channel ordering under arbitrary jitter, determinism, and loss
//! accounting under random partitions and crashes.

use now_sim::{
    Ctx, LinkModel, NetConfig, Partition, Pid, Process, Sim, SimConfig, SimDuration, SimTime,
};
use now_sim::detprop::prelude::*;

/// Records every delivery with its arrival time.
#[derive(Default)]
struct Probe {
    got: Vec<(Pid, u64, u64)>, // (from, tag, at_us)
}

impl Process for Probe {
    type Msg = u64;

    fn on_message(&mut self, from: Pid, msg: u64, ctx: &mut Ctx<'_, u64>) {
        self.got.push((from, msg, ctx.now().as_micros()));
    }
}

fn jittery(seed: u64, jitter_us: u64) -> Sim<Probe> {
    let cfg = SimConfig {
        seed,
        net: NetConfig {
            local: LinkModel {
                base_latency: SimDuration::from_micros(100),
                per_byte: SimDuration::from_micros(0),
                jitter: SimDuration::from_micros(jitter_us),
                drop_prob: 0.0,
            },
            long_distance: LinkModel::ideal(),
            loopback: SimDuration::from_micros(1),
            fifo: true,
        },
        jobs: None,
    };
    Sim::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn fifo_holds_for_any_jitter_and_burst(
        seed in 0u64..10_000,
        jitter in 0u64..5_000,
        burst in 1usize..60,
    ) {
        let mut sim = jittery(seed, jitter);
        let nodes = sim.add_nodes(2);
        let a = sim.spawn(nodes[0], Probe::default());
        let b = sim.spawn(nodes[1], Probe::default());
        sim.invoke(a, |_, ctx| {
            for i in 0..burst as u64 {
                ctx.send(b, i);
            }
        });
        sim.run_to_quiescence(SimTime(60_000_000));
        let tags: Vec<u64> = sim.process(b).got.iter().map(|(_, t, _)| *t).collect();
        let want: Vec<u64> = (0..burst as u64).collect();
        prop_assert_eq!(tags, want);
        // Arrival times never decrease.
        let times: Vec<u64> = sim.process(b).got.iter().map(|(_, _, t)| *t).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn determinism_for_any_seed(seed in 0u64..10_000) {
        let run = || {
            let mut sim = jittery(seed, 777);
            let nodes = sim.add_nodes(3);
            let pids: Vec<Pid> = nodes.iter().map(|&n| sim.spawn(n, Probe::default())).collect();
            for i in 0..30u64 {
                let from = pids[(i % 3) as usize];
                let to = pids[((i + 1) % 3) as usize];
                sim.invoke(from, move |_, ctx| ctx.send(to, i));
            }
            sim.run_to_quiescence(SimTime(60_000_000));
            (
                sim.stats().messages_sent,
                sim.now(),
                pids.iter().map(|&p| sim.process(p).got.clone()).collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn conservation_of_messages(
        seed in 0u64..10_000,
        drops in 0.0f64..0.5,
        sends in 1usize..80,
    ) {
        let cfg = SimConfig {
            seed,
            net: NetConfig {
                local: LinkModel {
                    drop_prob: drops,
                    ..LinkModel::lan()
                },
                long_distance: LinkModel::ideal(),
                loopback: SimDuration::from_micros(1),
                fifo: true,
            },
            jobs: None,
        };
        let mut sim: Sim<Probe> = Sim::new(cfg);
        let nodes = sim.add_nodes(2);
        let a = sim.spawn(nodes[0], Probe::default());
        let b = sim.spawn(nodes[1], Probe::default());
        sim.invoke(a, |_, ctx| {
            for i in 0..sends as u64 {
                ctx.send(b, i);
            }
        });
        sim.run_to_quiescence(SimTime(600_000_000));
        let st = sim.stats();
        // Every message is exactly delivered or dropped.
        prop_assert_eq!(st.messages_sent, st.messages_delivered + st.messages_dropped);
        prop_assert_eq!(st.messages_delivered as usize, sim.process(b).got.len());
    }

    #[test]
    fn partition_cells_fully_isolate(
        seed in 0u64..10_000,
        cut in prop::collection::vec(any::<bool>(), 4),
    ) {
        let mut sim = jittery(seed, 300);
        let nodes = sim.add_nodes(4);
        let pids: Vec<Pid> = nodes.iter().map(|&n| sim.spawn(n, Probe::default())).collect();
        let minority: Vec<_> = nodes
            .iter()
            .zip(&cut)
            .filter(|(_, &c)| c)
            .map(|(&n, _)| n)
            .collect();
        sim.set_partition(Partition::split(minority));
        // Everyone sends to everyone.
        for (i, &from) in pids.clone().iter().enumerate() {
            for (j, &to) in pids.clone().iter().enumerate() {
                if i != j {
                    let tag = (i * 10 + j) as u64;
                    sim.invoke(from, move |_, ctx| ctx.send(to, tag));
                }
            }
        }
        sim.run_to_quiescence(SimTime(60_000_000));
        // A message arrived iff sender and receiver are on the same side.
        for (j, &to) in pids.iter().enumerate() {
            for (i, _) in pids.iter().enumerate() {
                if i == j {
                    continue;
                }
                let tag = (i * 10 + j) as u64;
                let arrived = sim.process(to).got.iter().any(|(_, t, _)| *t == tag);
                prop_assert_eq!(arrived, cut[i] == cut[j], "tag {} cut {:?}", tag, cut);
            }
        }
    }

    #[test]
    fn crashes_never_resurrect(
        seed in 0u64..10_000,
        crash_at in 1u64..1_000_000,
    ) {
        let mut sim = jittery(seed, 500);
        let nodes = sim.add_nodes(2);
        let a = sim.spawn(nodes[0], Probe::default());
        let b = sim.spawn(nodes[1], Probe::default());
        sim.schedule_crash(b, SimTime(crash_at));
        // A steady stream across the crash point.
        for i in 0..50u64 {
            sim.invoke(a, move |_, ctx| ctx.send(b, i));
            sim.run_for(SimDuration::from_micros(50_000));
        }
        sim.run_to_quiescence(SimTime(60_000_000));
        prop_assert!(!sim.is_alive(b));
        // Everything b received arrived strictly before the crash.
        for (_, _, at) in &sim.process(b).got {
            prop_assert!(*at <= crash_at);
        }
    }
}
