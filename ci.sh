#!/usr/bin/env bash
# Tier-1 gate, runnable offline on any machine with a Rust toolchain:
#   1. release build of the whole workspace,
#   2. full test suite (includes detlint's self-check, the determinism
#      regression tests — serial and parallel — and the tracer on/off
#      byte-identity proof),
#   3. monitor-armed quick experiment sweep: every experiment runs with the
#      online virtual-synchrony invariant monitors in panic mode, so any
#      violation anywhere in the stack fails the gate,
#   4. microbench regression gate: the sweep's fresh hot-path minima must
#      stay within 2x of the committed BENCH_results.json baseline,
#   5. trace demo + Chrome export artifacts (tracectl smoke test),
#   6. now-cluster loopback smoke: the real-socket backend boots an 8-process
#      hierarchy over unix sockets, replays short E1/E9 runs, and the merged
#      trace must show zero virtual-synchrony violations (non-zero exit
#      otherwise),
#   7. chaos sweep: replay the shrunk-counterexample regression corpus, then
#      1000 generated adversarial scenarios (correlated crashes, partition
#      flaps, storms, rep-chain kills, crash-recover churn) with the
#      monitors — including VS-REJOIN — armed as oracles — any violation
#      fails the gate; the coverage census lands in artifacts,
#   8. the determinism linter, emitting its machine-readable report.
# Fails on the first broken step or on any non-allowlisted lint finding.
# Artifacts land in BENCH_artifacts/.
set -euo pipefail
cd "$(dirname "$0")"

mkdir -p BENCH_artifacts

# Snapshot the committed baseline before the sweep overwrites it.
cp BENCH_results.json BENCH_artifacts/baseline.json

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> QUICK=1 NOW_MONITORS=1 all_experiments (invariant monitors armed)"
QUICK=1 NOW_MONITORS=1 cargo run --quiet --release -p isis-bench --bin all_experiments \
    | tee BENCH_artifacts/experiments_quick.txt

echo "==> parallel engine: QUICK sweep at NOW_SIM_JOBS=4, digest vs sequential"
# The whole quick sweep again, with every simulation sharded across 4
# workers and the invariant monitors still armed. The emitted tables must
# be byte-identical to the sequential pass above — the parallel engine may
# only change wall-clock, never a byte of output. (Wall-clock lines differ
# by construction and are stripped before comparing.)
cp BENCH_results.json BENCH_artifacts/BENCH_results_seq.json
QUICK=1 NOW_MONITORS=1 NOW_SIM_JOBS=4 cargo run --quiet --release -p isis-bench --bin all_experiments \
    | tee BENCH_artifacts/experiments_quick_simjobs4.txt
# Keep the sequential sweep's microbench numbers as the gate input: the
# sharded re-run exists to prove byte-identity, not to time hot paths.
mv BENCH_results.json BENCH_artifacts/BENCH_results_simjobs4.json
cp BENCH_artifacts/BENCH_results_seq.json BENCH_results.json
for f in experiments_quick experiments_quick_simjobs4; do
    grep -v "wall-clock\|min .* | median .* | mean " \
        "BENCH_artifacts/$f.txt" > "BENCH_artifacts/$f.tables"
done
diff BENCH_artifacts/experiments_quick.tables BENCH_artifacts/experiments_quick_simjobs4.tables \
    || { echo "ci: NOW_SIM_JOBS=4 sweep diverged from sequential"; exit 1; }
echo "parallel engine: NOW_SIM_JOBS=4 output byte-identical to sequential"

echo "==> bench_gate (hot-path minima vs committed baseline)"
cargo run --quiet --release -p isis-bench --bin bench_gate -- \
    BENCH_artifacts/baseline.json BENCH_results.json

echo "==> trace demo + tracectl export"
cargo run --quiet --release -p isis-bench --bin trace_demo
cargo run --quiet --release -p now-trace --bin tracectl -- \
    BENCH_artifacts/trace_demo.trace --chrome BENCH_artifacts/trace_demo.json

echo "==> now-cluster loopback smoke (real sockets, monitors on merged trace)"
cargo run --quiet --release -p now-net --bin now-cluster -- smoke \
    | tee BENCH_artifacts/now_cluster_smoke.txt

echo "==> chaos sweep (1000 adversarial scenarios, monitors armed)"
cargo run --quiet --release -p now-chaos --bin chaos_sweep -- \
    --scenarios 1000 --seed 1 --census BENCH_artifacts/chaos_census.json \
    | tee BENCH_artifacts/chaos_sweep.txt

echo "==> cargo run -p detlint -- --json"
cargo run --quiet -p detlint -- --json | tee BENCH_artifacts/detlint.json

echo "==> ci: all green"
