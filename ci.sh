#!/usr/bin/env bash
# Tier-1 gate, runnable offline on any machine with a Rust toolchain:
#   1. release build of the whole workspace,
#   2. full test suite (includes detlint's self-check and the determinism
#      regression tests via workspace default-members),
#   3. the determinism linter itself, emitting the machine-readable report.
# Fails on the first broken step or on any non-allowlisted lint finding.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p detlint -- --json"
cargo run --quiet -p detlint -- --json

echo "==> ci: all green"
