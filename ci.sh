#!/usr/bin/env bash
# Tier-1 gate, runnable offline on any machine with a Rust toolchain:
#   1. release build of the whole workspace,
#   2. full test suite (includes detlint's self-check, the determinism
#      regression tests, and the tracer on/off byte-identity proof),
#   3. monitor-armed quick experiment sweep: every experiment runs with the
#      online virtual-synchrony invariant monitors in panic mode, so any
#      violation anywhere in the stack fails the gate,
#   4. trace demo + Chrome export artifacts (tracectl smoke test),
#   5. the determinism linter, emitting its machine-readable report.
# Fails on the first broken step or on any non-allowlisted lint finding.
# Artifacts land in BENCH_artifacts/.
set -euo pipefail
cd "$(dirname "$0")"

mkdir -p BENCH_artifacts

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> QUICK=1 NOW_MONITORS=1 all_experiments (invariant monitors armed)"
QUICK=1 NOW_MONITORS=1 cargo run --quiet --release -p isis-bench --bin all_experiments \
    | tee BENCH_artifacts/experiments_quick.txt

echo "==> trace demo + tracectl export"
cargo run --quiet --release -p isis-bench --bin trace_demo
cargo run --quiet --release -p now-trace --bin tracectl -- \
    BENCH_artifacts/trace_demo.trace --chrome BENCH_artifacts/trace_demo.json

echo "==> cargo run -p detlint -- --json"
cargo run --quiet -p detlint -- --json | tee BENCH_artifacts/detlint.json

echo "==> ci: all green"
