//! `isis-repro` — facade over the reproduction of Cooper & Birman,
//! "Supporting Large Scale Applications on Networks of Workstations"
//! (1989): hierarchical process groups over a virtually synchronous group
//! communication stack, on a deterministic network-of-workstations
//! simulator.
//!
//! The layers, bottom up:
//!
//! - [`sim`] (`now-sim`): deterministic discrete-event simulator.
//! - [`core`] (`isis-core`): process groups, FBCAST/CBCAST/ABCAST, views.
//! - [`hier`] (`isis-hier`): large groups — leaf subgroups, leader group,
//!   bounded-fanout tree broadcast. *The paper's contribution.*
//! - [`toolkit`] (`isis-toolkit`): coordinator-cohort, replicated data,
//!   mutual exclusion, parallel computation, transactions — flat and
//!   hierarchical.
//! - [`apps`] (`isis-apps`): the trading-room and factory workloads.
//!
//! See `examples/` for runnable entry points and DESIGN.md for the
//! paper-claim-to-module map.

pub use isis_apps as apps;
pub use isis_core as core;
pub use isis_hier as hier;
pub use isis_toolkit as toolkit;
pub use now_sim as sim;
